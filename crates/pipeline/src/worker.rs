//! The per-shard worker: pops messages off its SPSC queue, drives its
//! privately-owned `QuantileFilter`, and forwards reports to the sink.
//!
//! Single-writer is preserved by construction — the filter lives on the
//! worker's stack and is moved back out through the join handle at
//! shutdown; no lock, no sharing. This file is in the QF-L002 hot-path
//! set: the message loop performs no allocation and reads no clocks
//! (snapshot encoding, which does allocate, only runs on an explicit
//! quiesce message — see the `snapshot` method, which is on the
//! cold-function allowlist).

use crate::ring::Consumer;
use crate::telemetry;
use quantile_filter::{QuantileFilter, Report};
use std::sync::mpsc::Sender;

/// One message on a shard queue. `Copy` so queue slots never own heap
/// memory.
#[derive(Debug, Clone, Copy)]
pub enum Msg {
    /// A routed stream item.
    Item {
        /// The stream key (already hashed to this shard by the router).
        key: u64,
        /// The item's value/weight.
        value: f64,
    },
    /// Quiesce barrier: snapshot the filter *now* (every earlier item is
    /// applied, no later item is) and send the bytes to the sink.
    Quiesce,
    /// Drain sentinel: the router will push nothing further; exit after
    /// this message.
    Shutdown,
}

/// An event a worker pushes into the shared sink channel.
#[derive(Debug, Clone)]
pub enum Event {
    /// The just-inserted key was reported quantile-outstanding.
    Report {
        /// Shard that produced the report.
        shard: usize,
        /// The reported key.
        key: u64,
        /// The filter's report payload.
        report: Report,
    },
    /// A quiesce barrier reached this shard; `bytes` is the wire-v2
    /// snapshot of its filter at the barrier point.
    Snapshot {
        /// Shard the snapshot belongs to.
        shard: usize,
        /// `QuantileFilter::snapshot()` bytes.
        bytes: Vec<u8>,
    },
}

/// What a worker hands back through its join handle.
#[derive(Debug)]
pub struct WorkerExit {
    /// Items popped and applied to the filter.
    pub processed: u64,
    /// Reports emitted.
    pub reports: u64,
    /// The filter itself, so callers can inspect or re-launch.
    pub filter: QuantileFilter,
}

/// Owns the queue's consumer side and marks it dead when the worker
/// exits — including by unwinding — so a blocked router errors out
/// instead of spinning forever.
struct AliveGuard {
    queue: Consumer<Msg>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.queue.mark_dead();
    }
}

/// The worker body. Runs on a dedicated thread until [`Msg::Shutdown`].
pub fn run_worker(
    shard: usize,
    queue: Consumer<Msg>,
    mut filter: QuantileFilter,
    sink: Sender<Event>,
) -> WorkerExit {
    queue.register_current_thread();
    let mut guard = AliveGuard { queue };
    let mut processed = 0u64;
    let mut reports = 0u64;
    loop {
        match guard.queue.pop_wait() {
            Msg::Item { key, value } => {
                telemetry::dequeued();
                processed += 1;
                if let Some(report) = filter.insert(&key, value) {
                    telemetry::report();
                    reports += 1;
                    // A closed sink is not the worker's problem: keep
                    // draining so shutdown still conserves accounting.
                    let _ = sink.send(Event::Report { shard, key, report });
                }
            }
            Msg::Quiesce => snapshot(shard, &filter, &sink),
            Msg::Shutdown => break,
        }
    }
    WorkerExit {
        processed,
        reports,
        filter,
    }
}

/// Encode the filter at the quiesce point and ship it to the sink.
/// Cold by contract: runs once per snapshot request, never per item.
fn snapshot(shard: usize, filter: &QuantileFilter, sink: &Sender<Event>) {
    let bytes = filter.snapshot();
    let _ = sink.send(Event::Snapshot { shard, bytes });
}
