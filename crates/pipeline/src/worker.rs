//! The per-shard worker: pops messages off its SPSC queue, drives its
//! privately-owned `QuantileFilter`, and forwards reports to the sink.
//!
//! Single-writer is preserved by construction — the filter lives on the
//! worker's stack and is moved back out through the join handle at
//! shutdown; no lock, no sharing. This file is in the QF-L002 hot-path
//! set: the message loop performs no allocation and reads no clocks
//! (snapshot encoding, which does allocate, only runs on an explicit
//! quiesce message — see the `snapshot` method, which is on the
//! cold-function allowlist).
//!
//! Two loop bodies live here. [`run_worker`] is the original unsupervised
//! loop: one pop, one insert, one report. [`run_supervised`] adds the
//! crash-recovery contract from [`crate::supervisor`]: items are popped
//! in bursts of up to [`BURST`], applied, then *committed* — journaled
//! under the shard's recovery lock, with a checkpoint sealed when due —
//! before any report is sent. The order is the whole correctness story:
//!
//! * reports only ever describe journaled items, so a recovered filter
//!   (checkpoint + journal replay) is never *behind* the reports the
//!   caller saw;
//! * a crash between apply and commit loses exactly the uncommitted
//!   burst plus the in-ring slab — the accounted loss window;
//! * the commit starts with a generation check, so a worker the router
//!   has fenced off (e.g. one that hung and later woke) exits without
//!   journaling, reporting, or sealing anything.
//!
//! One lock acquisition per burst keeps the checkpoint machinery off the
//! per-item path (the QF-L002 requirement); `BURST` bounds both the
//! amortization window and the loss window.

use crate::chaos::ArmedChaos;
use crate::flight::{self, ShardFlight};
use crate::ring::Consumer;
use crate::supervisor::ShardRecovery;
use crate::telemetry;
use quantile_filter::{QuantileFilter, Report};
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// Items a supervised worker pops and applies per commit. Bounds the
/// per-burst stack buffers, the lock amortization window, and (together
/// with the queue capacity) the crash loss window.
pub(crate) const BURST: usize = 64;

/// One message on a shard queue. `Copy` so queue slots never own heap
/// memory.
#[derive(Debug, Clone, Copy)]
pub enum Msg {
    /// A routed stream item.
    Item {
        /// The stream key (already hashed to this shard by the router).
        key: u64,
        /// The item's value/weight.
        value: f64,
    },
    /// Quiesce barrier: snapshot the filter *now* (every earlier item is
    /// applied, no later item is) and send the bytes to the sink.
    Quiesce,
    /// Drain sentinel: the router will push nothing further; exit after
    /// this message.
    Shutdown,
}

/// An event a worker pushes into the shared sink channel.
#[derive(Debug, Clone)]
pub enum Event {
    /// The just-inserted key was reported quantile-outstanding.
    Report {
        /// Shard that produced the report.
        shard: usize,
        /// The reported key.
        key: u64,
        /// The filter's report payload.
        report: Report,
    },
    /// A quiesce barrier reached this shard; `bytes` is the wire-v2
    /// snapshot of its filter at the barrier point.
    Snapshot {
        /// Shard the snapshot belongs to.
        shard: usize,
        /// Worker generation that produced the frame (always 0 when
        /// unsupervised). The router discards frames from fenced
        /// generations — a worker that hung through a barrier and woke
        /// after its replacement must not answer the new barrier.
        generation: u64,
        /// `QuantileFilter::snapshot()` bytes.
        bytes: Vec<u8>,
    },
}

/// What a worker hands back through its join handle.
#[derive(Debug)]
pub struct WorkerExit {
    /// Items popped and applied to the filter.
    pub processed: u64,
    /// Items popped and discarded against shed credits (the oldest-item
    /// drops of the shedding backpressure policies).
    pub shed: u64,
    /// Reports emitted.
    pub reports: u64,
    /// The filter itself, so callers can inspect or re-launch.
    pub filter: QuantileFilter,
}

/// Everything a supervised worker generation needs beyond the legacy
/// loop's arguments: its shared recovery state, its fencing token, and
/// the armed chaos plan (tests only; `None` in production).
pub(crate) struct Supervision {
    pub(crate) recovery: Arc<ShardRecovery>,
    pub(crate) generation: u64,
    pub(crate) checkpoint_interval: u64,
    pub(crate) chaos: Option<ArmedChaos>,
    /// The shard's flight recorder; installed as this worker thread's
    /// trace emit context so core/sketch trace hooks land in the right
    /// ring. Survives the worker across restarts (the ring keeps the
    /// pre-crash history the supervisor dumps).
    pub(crate) flight: ShardFlight,
}

/// Owns the queue's consumer side and marks it dead when the worker
/// exits — including by unwinding — so a blocked router errors out
/// instead of spinning forever.
struct AliveGuard {
    queue: Consumer<Msg>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.queue.mark_dead();
    }
}

/// The worker body. Runs on a dedicated thread until [`Msg::Shutdown`]
/// (or until the router closes the queue's producer side).
pub fn run_worker(
    shard: usize,
    queue: Consumer<Msg>,
    mut filter: QuantileFilter,
    sink: Sender<Event>,
    flight: ShardFlight,
) -> WorkerExit {
    queue.register_current_thread();
    flight.install(0);
    let mut guard = AliveGuard { queue };
    let mut processed = 0u64;
    let mut shed = 0u64;
    let mut reports = 0u64;
    loop {
        match guard.queue.pop_wait() {
            Some(Msg::Item { key, value }) => {
                telemetry::dequeued();
                // Redeem an outstanding shed credit against this item —
                // it is the oldest in the queue by FIFO.
                if guard.queue.take_shed(1) != 0 {
                    telemetry::shed();
                    shed += 1;
                    continue;
                }
                processed += 1;
                if let Some(report) = filter.insert(&key, value) {
                    telemetry::report();
                    reports += 1;
                    // A closed sink is not the worker's problem: keep
                    // draining so shutdown still conserves accounting.
                    let _ = sink.send(Event::Report { shard, key, report });
                }
            }
            Some(Msg::Quiesce) => snapshot(shard, 0, &filter, &sink, processed),
            Some(Msg::Shutdown) | None => break,
        }
    }
    WorkerExit {
        processed,
        shed,
        reports,
        filter,
    }
}

/// The supervised worker body: burst pop → apply → commit → report.
/// See the module docs for why that order is load-bearing.
pub(crate) fn run_supervised(
    shard: usize,
    queue: Consumer<Msg>,
    mut filter: QuantileFilter,
    sink: Sender<Event>,
    sup: Supervision,
) -> WorkerExit {
    queue.register_current_thread();
    sup.flight.install(sup.generation);
    let mut guard = AliveGuard { queue };
    let mut processed = 0u64;
    let mut shed_total = 0u64;
    let mut reports_total = 0u64;
    let mut keys = [0u64; BURST];
    let mut vals = [0f64; BURST];
    let mut reps: [Option<Report>; BURST] = [None; BURST];
    // A control message that interrupted burst collection; handled on the
    // next iteration so it observes the committed filter state.
    let mut pending: Option<Msg> = None;
    loop {
        let msg = match pending.take() {
            Some(m) => m,
            None => match guard.queue.pop_wait() {
                Some(m) => m,
                // Producer closed: this generation was fenced off (or the
                // pipeline is tearing down without a drain).
                None => break,
            },
        };
        match msg {
            Msg::Shutdown => break,
            Msg::Quiesce => snapshot(shard, sup.generation, &filter, &sink, processed),
            Msg::Item { key, value } => {
                keys[0] = key;
                vals[0] = value;
                let mut n = 1usize;
                while n < BURST {
                    match guard.queue.try_pop() {
                        Some(Msg::Item { key, value }) => {
                            keys[n] = key;
                            vals[n] = value;
                            n += 1;
                        }
                        Some(ctrl) => {
                            pending = Some(ctrl);
                            break;
                        }
                        None => break,
                    }
                }
                // Pops are progress, whether applied or shed — this is
                // the liveness signal the watchdog reads, and the pop
                // ordinal clock the chaos plan addresses items by.
                let base = sup.recovery.note_progress(n as u64);
                // Redeem shed credits against the oldest items of the
                // burst (they are the oldest in the queue by FIFO).
                let shed = guard.queue.take_shed(n as u32) as usize;
                for _ in 0..n {
                    telemetry::dequeued();
                }
                for _ in 0..shed {
                    telemetry::shed();
                }
                let mut burst_reports = 0u64;
                for i in shed..n {
                    if let Some(chaos) = &sup.chaos {
                        chaos.before_apply(shard, base + i as u64, keys[i]);
                    }
                    reps[i] = filter.insert(&keys[i], vals[i]);
                    if reps[i].is_some() {
                        burst_reports += 1;
                    }
                }
                {
                    let mut inner = sup.recovery.lock();
                    if inner.generation != sup.generation {
                        // Fenced: a replacement owns this lineage now.
                        // Exit with zero further side effects — nothing
                        // journaled, no reports sent for this burst.
                        return WorkerExit {
                            processed,
                            shed: shed_total,
                            reports: reports_total,
                            filter,
                        };
                    }
                    for i in shed..n {
                        inner.append(keys[i], vals[i]);
                    }
                    inner.shed += shed as u64;
                    inner.reports += burst_reports;
                    if inner.due_seal(sup.checkpoint_interval) {
                        inner.seal_checkpoint(shard, &filter, sup.chaos.as_ref());
                    }
                }
                processed += (n - shed) as u64;
                shed_total += shed as u64;
                reports_total += burst_reports;
                for i in shed..n {
                    if let Some(report) = reps[i].take() {
                        telemetry::report();
                        let _ = sink.send(Event::Report {
                            shard,
                            key: keys[i],
                            report,
                        });
                    }
                }
            }
        }
    }
    WorkerExit {
        processed,
        shed: shed_total,
        reports: reports_total,
        filter,
    }
}

/// Encode the filter at the quiesce point and ship it to the sink.
/// Cold by contract: runs once per snapshot request, never per item.
fn snapshot(
    shard: usize,
    generation: u64,
    filter: &QuantileFilter,
    sink: &Sender<Event>,
    applied: u64,
) {
    let bytes = filter.snapshot();
    flight::snapshot_cut(bytes.len() as u64, applied);
    let _ = sink.send(Event::Snapshot {
        shard,
        generation,
        bytes,
    });
}
