//! The per-shard worker: pops slabs off its SPSC queue, drains each one
//! through its privately-owned `QuantileFilter`'s fused batch path, and
//! forwards reports to the sink.
//!
//! Single-writer is preserved by construction — the filter lives on the
//! worker's stack and is moved back out through the join handle at
//! shutdown; no lock, no sharing. This file is in the QF-L002 hot-path
//! set: the message loop performs no allocation and reads no clocks
//! (snapshot encoding, which does allocate, only runs on an explicit
//! quiesce message — see the `snapshot` method; the slab and report
//! buffers are allocated once in cold constructors).
//!
//! ## Slab handoff
//!
//! A queue slot carries a [`Slab`] — a router-filled chunk of up to
//! `slab_capacity` items — not a single item. The Lamport handshake, the
//! park/wake handshake, shed-credit redemption, and (supervised) the
//! journal lock are each paid **once per slab**; the items inside drain
//! through [`QuantileFilter::insert_batch`], which is bit-identical to
//! inserting them one by one. A shed credit redeems a whole slab: the
//! oldest queued slab is discarded intact, its length counted into
//! `shed`, and (under `ShedFair`) its keys un-noted from the shared
//! fairness sketch so partial-slab shed stays exactly accounted per key.
//!
//! Two loop bodies live here. [`run_worker`] is the unsupervised loop:
//! one pop, one batch insert, reports inline. [`run_supervised`] adds
//! the crash-recovery contract from [`crate::supervisor`]: a slab is
//! popped, applied, then *committed* — journaled under the shard's
//! recovery lock, with a checkpoint sealed when due — before any report
//! is sent. The order is the whole correctness story:
//!
//! * reports only ever describe journaled items, so a recovered filter
//!   (checkpoint + journal replay) is never *behind* the reports the
//!   caller saw;
//! * a crash between apply and commit loses exactly the uncommitted
//!   slab plus whatever slabs sit in the ring — the accounted loss
//!   window;
//! * the commit starts with a generation check, so a worker the router
//!   has fenced off (e.g. one that hung and later woke) exits without
//!   journaling, reporting, or sealing anything.
//!
//! One lock acquisition per slab keeps the checkpoint machinery off the
//! per-item path (the QF-L002 requirement); the slab capacity bounds
//! both the amortization window and the per-commit loss window.

use crate::chaos::ArmedChaos;
use crate::flight::{self, ShardFlight};
use crate::pipeline::Fairness;
use crate::ring::Consumer;
use crate::supervisor::ShardRecovery;
use crate::telemetry;
use quantile_filter::{QuantileFilter, Report};
use std::sync::mpsc::Sender;
use std::sync::Arc;

/// A router-filled chunk of routed items, handed to the worker as one
/// ring slot. Owns its heap buffer; the ring's drop path releases slabs
/// still queued at teardown.
#[derive(Debug)]
pub struct Slab {
    items: Vec<(u64, f64)>,
    capacity: usize,
}

impl Slab {
    /// Allocate an empty slab that fills at `capacity` items. Cold by
    /// contract: the router allocates one per flush, never per item.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            items: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Append one routed item. Callers check [`Self::is_full`] first;
    /// the fill level is the router's flush trigger.
    #[inline]
    pub fn push(&mut self, key: u64, value: f64) {
        self.items.push((key, value));
    }

    /// Remove and return the most recently pushed item (the router's
    /// "un-admit the incoming item" path for drop policies).
    #[inline]
    pub fn pop(&mut self) -> Option<(u64, f64)> {
        self.items.pop()
    }

    /// Items currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the slab empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Has the slab reached its flush threshold?
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The items, in admission order.
    #[inline]
    pub fn items(&self) -> &[(u64, f64)] {
        &self.items
    }

    /// The flush threshold this slab was built with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One message on a shard queue.
#[derive(Debug)]
pub enum Msg {
    /// A slab of routed items, drained through the fused batch path.
    Slab(Slab),
    /// Quiesce barrier: snapshot the filter *now* (every earlier slab is
    /// applied, no later one is) and send the bytes to the sink.
    Quiesce,
    /// Drain sentinel: the router will push nothing further; exit after
    /// this message.
    Shutdown,
}

/// An event a worker pushes into the shared sink channel.
#[derive(Debug, Clone)]
pub enum Event {
    /// The just-inserted key was reported quantile-outstanding.
    Report {
        /// Shard that produced the report.
        shard: usize,
        /// The reported key.
        key: u64,
        /// The filter's report payload.
        report: Report,
    },
    /// A quiesce barrier reached this shard; `bytes` is the wire-v2
    /// snapshot of its filter at the barrier point.
    Snapshot {
        /// Shard the snapshot belongs to.
        shard: usize,
        /// Worker generation that produced the frame (always 0 when
        /// unsupervised). The router discards frames from fenced
        /// generations — a worker that hung through a barrier and woke
        /// after its replacement must not answer the new barrier.
        generation: u64,
        /// `QuantileFilter::snapshot()` bytes.
        bytes: Vec<u8>,
    },
}

/// What a worker hands back through its join handle.
#[derive(Debug)]
pub struct WorkerExit {
    /// Items popped and applied to the filter.
    pub processed: u64,
    /// Items popped and discarded against shed credits (whole-slab
    /// oldest drops of the shedding backpressure policies).
    pub shed: u64,
    /// Reports emitted.
    pub reports: u64,
    /// The filter itself, so callers can inspect or re-launch.
    pub filter: QuantileFilter,
}

/// Everything a supervised worker generation needs beyond the legacy
/// loop's arguments: its shared recovery state, its fencing token, and
/// the armed chaos plan (tests only; `None` in production).
pub(crate) struct Supervision {
    pub(crate) recovery: Arc<ShardRecovery>,
    pub(crate) generation: u64,
    pub(crate) checkpoint_interval: u64,
    /// Router slab size; bounds the per-commit report buffer.
    pub(crate) slab_capacity: usize,
    pub(crate) chaos: Option<ArmedChaos>,
    /// Shared `ShedFair` admission sketch (`None` under other
    /// policies); shed slabs un-note their keys here.
    pub(crate) fairness: Option<Arc<Fairness>>,
    /// The shard's flight recorder; installed as this worker thread's
    /// trace emit context so core/sketch trace hooks land in the right
    /// ring. Survives the worker across restarts (the ring keeps the
    /// pre-crash history the supervisor dumps).
    pub(crate) flight: ShardFlight,
}

/// Per-commit report staging for the supervised loop: reports are
/// buffered through apply + commit and only sent once the slab is
/// journaled (see the module docs for why the order is load-bearing).
struct ReportBuf {
    buf: Vec<(usize, Report)>,
}

impl ReportBuf {
    /// Allocate once, sized to the slab capacity — the worker-lifetime
    /// buffer that keeps allocation out of the slab loop.
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }
}

/// Owns the queue's consumer side and marks it dead when the worker
/// exits — including by unwinding — so a blocked router errors out
/// instead of spinning forever.
struct AliveGuard {
    queue: Consumer<Msg>,
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.queue.mark_dead();
    }
}

/// Un-note every key of a shed slab from the shared fairness sketch, so
/// the admission history the router samples stops counting items that
/// were discarded before they ever reached a filter.
fn unnote_shed(fairness: Option<&Arc<Fairness>>, slab: &Slab) {
    if let Some(f) = fairness {
        for &(key, _) in slab.items() {
            f.unnote(key);
        }
    }
}

/// The worker body. Runs on a dedicated thread until [`Msg::Shutdown`]
/// (or until the router closes the queue's producer side).
pub(crate) fn run_worker(
    shard: usize,
    queue: Consumer<Msg>,
    mut filter: QuantileFilter,
    sink: Sender<Event>,
    fairness: Option<Arc<Fairness>>,
    flight: ShardFlight,
) -> WorkerExit {
    queue.register_current_thread();
    flight.install(0);
    let mut guard = AliveGuard { queue };
    let mut processed = 0u64;
    let mut shed = 0u64;
    let mut reports = 0u64;
    loop {
        match guard.queue.pop_wait() {
            Some(Msg::Slab(slab)) => {
                let n = slab.len() as u64;
                telemetry::dequeued_n(n);
                // Redeem an outstanding shed credit against this whole
                // slab — it is the oldest in the queue by FIFO.
                if guard.queue.take_shed(1) != 0 {
                    telemetry::shed_n(n);
                    shed += n;
                    unnote_shed(fairness.as_ref(), &slab);
                    continue;
                }
                processed += n;
                let items = slab.items();
                filter.insert_batch(items, &mut |i, report| {
                    telemetry::report();
                    reports += 1;
                    // A closed sink is not the worker's problem: keep
                    // draining so shutdown still conserves accounting.
                    let _ = sink.send(Event::Report {
                        shard,
                        key: items[i].0,
                        report,
                    });
                });
            }
            Some(Msg::Quiesce) => snapshot(shard, 0, &filter, &sink, processed),
            Some(Msg::Shutdown) | None => break,
        }
    }
    WorkerExit {
        processed,
        shed,
        reports,
        filter,
    }
}

/// The supervised worker body: pop slab → apply → commit → report.
/// See the module docs for why that order is load-bearing.
pub(crate) fn run_supervised(
    shard: usize,
    queue: Consumer<Msg>,
    mut filter: QuantileFilter,
    sink: Sender<Event>,
    sup: Supervision,
) -> WorkerExit {
    queue.register_current_thread();
    sup.flight.install(sup.generation);
    let mut guard = AliveGuard { queue };
    let mut processed = 0u64;
    let mut shed_total = 0u64;
    let mut reports_total = 0u64;
    let mut staged = ReportBuf::new(sup.slab_capacity);
    // A `None` pop ends the loop: the producer closed, i.e. this
    // generation was fenced off (or the pipeline is tearing down
    // without a drain).
    while let Some(msg) = guard.queue.pop_wait() {
        match msg {
            Msg::Shutdown => break,
            Msg::Quiesce => snapshot(shard, sup.generation, &filter, &sink, processed),
            Msg::Slab(slab) => {
                let n = slab.len();
                // Pops are progress, whether applied or shed — this is
                // the liveness signal the watchdog reads, and the pop
                // ordinal clock the chaos plan addresses items by
                // (ordinals stay per-item: `base + i`).
                let base = sup.recovery.note_progress(n as u64);
                telemetry::dequeued_n(n as u64);
                // Redeem a shed credit against this whole slab (the
                // oldest in the queue by FIFO). The length still counts
                // as committed shed so conservation holds exactly.
                if guard.queue.take_shed(1) != 0 {
                    telemetry::shed_n(n as u64);
                    unnote_shed(sup.fairness.as_ref(), &slab);
                    {
                        let mut inner = sup.recovery.lock();
                        if inner.generation != sup.generation {
                            return WorkerExit {
                                processed,
                                shed: shed_total,
                                reports: reports_total,
                                filter,
                            };
                        }
                        inner.shed += n as u64;
                    }
                    shed_total += n as u64;
                    continue;
                }
                staged.buf.clear();
                let items = slab.items();
                if let Some(chaos) = &sup.chaos {
                    // Chaos-armed runs need the per-item probe between
                    // inserts; `insert_batch` is bit-identical to this
                    // loop, so the applied state cannot diverge.
                    for (i, &(key, value)) in items.iter().enumerate() {
                        chaos.before_apply(shard, base + i as u64, key);
                        if let Some(report) = filter.insert(&key, value) {
                            staged.buf.push((i, report));
                        }
                    }
                } else {
                    let buf = &mut staged.buf;
                    filter.insert_batch(items, &mut |i, report| buf.push((i, report)));
                }
                let slab_reports = staged.buf.len() as u64;
                {
                    let mut inner = sup.recovery.lock();
                    if inner.generation != sup.generation {
                        // Fenced: a replacement owns this lineage now.
                        // Exit with zero further side effects — nothing
                        // journaled, no reports sent for this slab.
                        return WorkerExit {
                            processed,
                            shed: shed_total,
                            reports: reports_total,
                            filter,
                        };
                    }
                    for &(key, value) in items {
                        inner.append(key, value);
                    }
                    inner.reports += slab_reports;
                    if inner.due_seal(sup.checkpoint_interval) {
                        inner.seal_checkpoint(shard, &filter, sup.chaos.as_ref());
                    }
                }
                processed += n as u64;
                reports_total += slab_reports;
                for (i, report) in staged.buf.drain(..) {
                    telemetry::report();
                    let _ = sink.send(Event::Report {
                        shard,
                        key: items[i].0,
                        report,
                    });
                }
            }
        }
    }
    WorkerExit {
        processed,
        shed: shed_total,
        reports: reports_total,
        filter,
    }
}

/// Encode the filter at the quiesce point and ship it to the sink.
/// Cold by contract: runs once per snapshot request, never per item.
fn snapshot(
    shard: usize,
    generation: u64,
    filter: &QuantileFilter,
    sink: &Sender<Event>,
    applied: u64,
) {
    let bytes = filter.snapshot();
    flight::snapshot_cut(bytes.len() as u64, applied);
    let _ = sink.send(Event::Snapshot {
        shard,
        generation,
        bytes,
    });
}
