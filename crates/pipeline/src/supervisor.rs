//! Supervision & recovery: the state and arithmetic that turn a worker
//! crash into a bounded-loss restart instead of a pipeline-fatal error.
//!
//! ## The shard lifecycle state machine
//!
//! ```text
//!            progress resumes
//!          ┌───────────────────┐
//!          ▼                   │
//!       Running ──stall──▶ Suspect ──deadline──▶ Restarting ─┐
//!          ▲                                        │        │
//!          └──────────── respawned ◀────────────────┘        │
//!                                       strikes > max ──▶ Quarantined
//! ```
//!
//! The router (single-threaded, in `pipeline.rs`) drives the machine: it
//! detects death via `PushError::Disconnected` (the worker's `AliveGuard`
//! flips the ring flag on any exit, including panic unwind) and hangs via
//! the per-shard [`ShardRecovery::progress`] counter checked against a
//! deadline whenever pushes stall. A crashed shard restarts with capped
//! exponential backoff; after `max_strikes` rapid crashes it is
//! quarantined and the pipeline degrades (that shard's items fail with a
//! typed per-item outcome) rather than dies.
//!
//! ## Checkpoint + journal: what recovery rebuilds from
//!
//! Every worker appends each applied item to a bounded in-memory
//! **replay journal** and seals a wire-v2 snapshot **checkpoint** every
//! `checkpoint_interval` applied items. Checkpoints are double-buffered:
//! a new seal lands in the standby slot and only then becomes "latest",
//! so a torn or corrupted checkpoint never replaces a good one. The
//! journal is pruned only up to the *older* checkpoint's sequence, which
//! means `older checkpoint + journal` still reconstructs the full state
//! when the newest checkpoint fails its own checksum — corruption costs
//! replay time, not data.
//!
//! Recovery therefore rebuilds `restore(newest valid checkpoint) +
//! replay(journal suffix)`, yielding a filter equal to the crashed one at
//! its last journaled item. Everything past that point — the slab being
//! applied at crash time plus whatever slabs sat in the SPSC ring — is
//! the **loss window**, accounted exactly in [`RecoveryRecord::lost`] and
//! the pipeline summary, never silently absorbed. (Items still buffered
//! router-side survive a crash — they re-flush to the replacement worker
//! — so they are excluded from the window.)
//!
//! All of this state lives behind one uncontended mutex per shard
//! ([`ShardRecovery`]), written by the worker in per-slab batches (the
//! worker takes the lock once per slab of up to
//! `PipelineConfig::slab_capacity` items) and read by the router only
//! during recovery — so the fault-free hot path pays one uncontended
//! lock plus a handful of word writes per slab. Generation fencing
//! makes abandoned workers harmless: the router bumps
//! `RecoveryInner::generation` under the lock before rebuilding, and a
//! stale worker (e.g. one that was hung and later wakes) observes the
//! mismatch on its next batch commit and exits without journaling,
//! reporting, or sealing anything.

use crate::chaos::ArmedChaos;
use crate::telemetry;
use core::time::Duration;
use qf_model::sync::atomic::{AtomicU64, Ordering};
use qf_model::sync::{Mutex, MutexGuard};
use quantile_filter::QuantileFilter;
use std::collections::VecDeque;

/// Lifecycle state of a supervised shard. See the module docs for the
/// transition diagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardState {
    /// The worker is alive and making progress.
    #[default]
    Running,
    /// Pushes are stalling and the progress counter has stopped moving;
    /// the watchdog deadline is ticking.
    Suspect,
    /// A crash or hang was confirmed; the shard is being rebuilt from
    /// checkpoint + journal.
    Restarting,
    /// The shard exceeded its strike budget and will not be restarted;
    /// its items are rejected with a typed per-item outcome.
    Quarantined,
}

impl ShardState {
    /// Numeric encoding used by the `qf_pipeline_shard_state` gauge
    /// (which exports the *sum* of codes across shards, so `0` means
    /// every shard is `Running`).
    pub fn code(self) -> i64 {
        match self {
            Self::Running => 0,
            Self::Suspect => 1,
            Self::Restarting => 2,
            Self::Quarantined => 3,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown encodings.
    pub fn from_code(code: i64) -> Option<Self> {
        match code {
            0 => Some(Self::Running),
            1 => Some(Self::Suspect),
            2 => Some(Self::Restarting),
            3 => Some(Self::Quarantined),
            _ => None,
        }
    }

    /// Stable lowercase name used by the `/health` ops endpoint.
    pub fn name(self) -> &'static str {
        match self {
            Self::Running => "running",
            Self::Suspect => "suspect",
            Self::Restarting => "restarting",
            Self::Quarantined => "quarantined",
        }
    }
}

/// Supervision policy knobs. Passed to
/// [`Pipeline::launch_supervised`](crate::Pipeline::launch_supervised);
/// [`Default`] is tuned for production-ish streams (checkpoint every 8Ki
/// items, 200 ms watchdog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Seal a checkpoint every this many applied items (per shard). The
    /// replay journal is sized to `2 × (interval + burst)` entries so
    /// that even a corrupted newest checkpoint recovers losslessly from
    /// the older one.
    pub checkpoint_interval: u64,
    /// How long a shard's progress counter may stay frozen while its
    /// queue is refusing items before the worker is declared hung.
    pub watchdog_deadline: Duration,
    /// Crashes tolerated in quick succession before the shard is
    /// quarantined instead of restarted.
    pub max_strikes: u32,
    /// Backoff before the first restart; doubles per strike.
    pub backoff_base: Duration,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: Duration,
    /// Applied items after a restart that reset the strike counter — a
    /// shard that runs this far is considered healthy again.
    pub strike_forgiveness: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            checkpoint_interval: 8192,
            watchdog_deadline: Duration::from_millis(200),
            max_strikes: 3,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(200),
            strike_forgiveness: 4 * 8192,
        }
    }
}

impl SupervisorConfig {
    /// Reject configurations the supervisor cannot honor.
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.checkpoint_interval == 0 {
            return Err("checkpoint interval must be at least 1 item");
        }
        if self.watchdog_deadline.is_zero() {
            return Err("watchdog deadline must be non-zero");
        }
        Ok(())
    }

    /// Backoff before restart number `strikes` (1-based): capped
    /// exponential.
    pub fn backoff_for(&self, strikes: u32) -> Duration {
        let factor = 1u32 << strikes.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// Why a shard was recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashCause {
    /// The worker thread exited without being told to (panic unwind,
    /// observed as `PushError::Disconnected`).
    Panic,
    /// The worker stopped making progress past the watchdog deadline.
    Hang,
    /// The worker failed to drain and exit within the shutdown deadline.
    ShutdownStall,
}

impl CrashCause {
    /// Numeric encoding carried in the `a` payload of flight-recorder
    /// restart/quarantine events (`0` is reserved for "unknown").
    pub fn code(self) -> u64 {
        match self {
            Self::Panic => 1,
            Self::Hang => 2,
            Self::ShutdownStall => 3,
        }
    }

    /// Stable lowercase name used in flight dumps and `/health` output.
    pub fn name(self) -> &'static str {
        match self {
            Self::Panic => "panic",
            Self::Hang => "hang",
            Self::ShutdownStall => "shutdown_stall",
        }
    }

    /// Inverse of [`code`](Self::code); `None` for `0` and unknown codes.
    pub fn from_code(code: u64) -> Option<Self> {
        match code {
            1 => Some(Self::Panic),
            2 => Some(Self::Hang),
            3 => Some(Self::ShutdownStall),
            _ => None,
        }
    }
}

/// What recovery rebuilt the shard's filter from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveredBase {
    /// `restore(checkpoint at seq)` + journal replay.
    Checkpoint {
        /// Applied-item sequence the checkpoint captured.
        seq: u64,
    },
    /// No checkpoint existed yet; a fresh filter replayed the full
    /// journal (which still covered the shard's whole history).
    Fresh,
    /// Neither checkpoint decoded *and* the journal no longer reached
    /// back to item 1: the shard restarted empty and its prior state is
    /// gone. `RecoveryRecord::prior_applied` says how much.
    StateLoss,
}

/// One recovery event, as recorded in
/// [`PipelineSummary::recoveries`](crate::PipelineSummary::recoveries).
/// The loss bound: a crash loses exactly `lost` items — the burst being
/// applied plus the in-ring slab at crash time — and nothing else.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryRecord {
    /// Shard that crashed.
    pub shard: usize,
    /// Generation that was fenced (the replacement runs `generation+1`).
    pub generation: u64,
    /// What the supervisor observed.
    pub cause: CrashCause,
    /// What the replacement filter was rebuilt from; `None` when no
    /// rebuild was attempted (quarantine on strike exhaustion, terminal
    /// fence at shutdown).
    pub base: Option<RecoveredBase>,
    /// Journal items re-applied on top of the base (reports suppressed —
    /// they were already emitted by the crashed generation).
    pub replayed: u64,
    /// Applied-item sequence the replacement resumed from.
    pub recovered_seq: u64,
    /// Items whose effect did not survive: enqueued but never journaled.
    pub lost: u64,
    /// Items the fenced generation had applied before the crash (only
    /// differs from `recovered_seq` under [`RecoveredBase::StateLoss`]).
    pub prior_applied: u64,
    /// `true` when this crash exhausted the strike budget and the shard
    /// was quarantined instead of restarted.
    pub quarantined: bool,
    /// Detection-to-respawn wall time (zero when quarantined).
    pub restart_latency: Duration,
}

#[derive(Debug, Clone, Copy)]
struct JournalEntry {
    seq: u64,
    key: u64,
    value: f64,
}

#[derive(Debug, Clone)]
struct Checkpoint {
    seq: u64,
    bytes: Vec<u8>,
}

/// The mutex-guarded half of a shard's recovery state. Workers append to
/// it once per burst; the router reads it only while recovering or
/// summarizing.
#[derive(Debug)]
pub(crate) struct RecoveryInner {
    /// Fencing token: bumped by the router before every rebuild. A
    /// worker whose own generation no longer matches must exit without
    /// side effects.
    pub(crate) generation: u64,
    /// Applied-and-journaled items of the surviving lineage.
    pub(crate) applied: u64,
    /// Reports emitted for journaled items (crash-safe report count).
    pub(crate) reports: u64,
    /// Items shed by the worker under `DropOldest` (popped, discarded,
    /// never applied).
    pub(crate) shed: u64,
    journal: VecDeque<JournalEntry>,
    journal_cap: usize,
    slots: [Option<Checkpoint>; 2],
    latest: usize,
    seals: u64,
}

/// Per-shard recovery state shared between the router, the live worker,
/// and any abandoned predecessors (which the generation fence renders
/// inert).
#[derive(Debug)]
pub(crate) struct ShardRecovery {
    inner: Mutex<RecoveryInner>,
    /// Liveness counter: bumped per popped item, read by the watchdog.
    /// Monotone across generations; only "has it moved" matters.
    // sync: counter — relaxed watchdog heartbeat; a stale read only
    // delays a hang verdict by one scan, and every state handoff goes
    // through `inner`'s lock edges.
    progress: AtomicU64,
}

impl ShardRecovery {
    /// `max_burst` is the largest batch a worker commits under one lock
    /// acquisition — the pipeline's slab capacity — so the journal can
    /// always absorb a full checkpoint interval plus one in-flight slab
    /// on both sides of the double-buffered prune horizon.
    pub(crate) fn new(checkpoint_interval: u64, max_burst: usize) -> Self {
        let journal_cap = 2 * (checkpoint_interval as usize + max_burst);
        Self {
            inner: Mutex::new(RecoveryInner {
                generation: 0,
                applied: 0,
                reports: 0,
                shed: 0,
                journal: VecDeque::with_capacity(journal_cap + 1),
                journal_cap,
                slots: [None, None],
                latest: 0,
                seals: 0,
            }),
            progress: AtomicU64::new(0),
        }
    }

    /// Bump the liveness counter by `n` popped items; returns the value
    /// *before* the bump (the pop ordinal base for the burst).
    pub(crate) fn note_progress(&self, n: u64) -> u64 {
        self.progress.fetch_add(n, Ordering::Relaxed)
    }

    /// Current liveness counter (watchdog side).
    pub(crate) fn progress(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// Lock the inner state. Poisoning is tolerated (the shim's `lock`
    /// continues with the inner data): a worker can only panic inside
    /// `filter.insert` (outside the lock) or via injected chaos, but if
    /// a panic ever does land mid-commit the recovery data is still the
    /// best information available.
    pub(crate) fn lock(&self) -> MutexGuard<'_, RecoveryInner> {
        self.inner.lock()
    }
}

/// What [`RecoveryInner::recover`] rebuilt.
#[derive(Debug)]
pub(crate) struct Recovered {
    pub(crate) filter: QuantileFilter,
    pub(crate) base: RecoveredBase,
    pub(crate) replayed: u64,
    /// `applied` of the fenced lineage at recovery time.
    pub(crate) prior_applied: u64,
    /// `applied` the replacement resumes from (== `prior_applied` except
    /// under `StateLoss`, where it is 0).
    pub(crate) recovered_seq: u64,
}

impl RecoveryInner {
    /// Journal one applied item. Called by the worker inside its batch
    /// commit, after the generation check.
    pub(crate) fn append(&mut self, key: u64, value: f64) {
        self.applied += 1;
        self.journal.push_back(JournalEntry {
            seq: self.applied,
            key,
            value,
        });
        // Unreachable by construction (seals prune faster than the cap),
        // but a bounded journal must stay bounded regardless.
        if self.journal.len() > self.journal_cap {
            self.journal.pop_front();
        }
    }

    /// Checkpoints sealed so far (the chaos seal ordinal).
    #[cfg(test)]
    pub(crate) fn seals(&self) -> u64 {
        self.seals
    }

    fn latest_seq(&self) -> u64 {
        self.slots[self.latest].as_ref().map_or(0, |c| c.seq)
    }

    /// Is the shard due for a checkpoint at the current batch boundary?
    pub(crate) fn due_seal(&self, interval: u64) -> bool {
        self.applied - self.latest_seq() >= interval
    }

    /// Seal a checkpoint of `filter` (whose state must equal the journal
    /// head, i.e. call this only at a batch boundary). Cold by contract:
    /// runs once per `checkpoint_interval` items, never per item.
    pub(crate) fn seal_checkpoint(
        &mut self,
        shard: usize,
        filter: &QuantileFilter,
        chaos: Option<&ArmedChaos>,
    ) {
        let mut bytes = filter.snapshot();
        self.seals += 1;
        if let Some(ch) = chaos {
            ch.corrupt_checkpoint(shard, self.seals, &mut bytes);
        }
        let standby = 1 - self.latest;
        self.slots[standby] = Some(Checkpoint {
            seq: self.applied,
            bytes,
        });
        self.latest = standby;
        // Keep the journal reaching back to the *older* checkpoint so a
        // corrupt newest one still recovers losslessly.
        let bound = self.slots[1 - standby].as_ref().map_or(0, |c| c.seq);
        while self.journal.front().is_some_and(|e| e.seq <= bound) {
            self.journal.pop_front();
        }
        telemetry::checkpoint_sealed();
        // Runs on the worker thread (under the commit lock), so the
        // thread-local flight context routes this to the shard's ring.
        crate::flight::checkpoint_seal(self.seals, self.applied);
    }

    /// Rebuild a filter from the best available base without mutating
    /// anything: newest valid checkpoint + journal suffix, else older
    /// checkpoint, else a fresh filter when the journal still covers the
    /// whole history. `None` means the state is unrecoverable (both
    /// checkpoints bad and the journal is pruned) or `build_fresh`
    /// failed.
    pub(crate) fn reconstruct(
        &self,
        build_fresh: &mut dyn FnMut() -> Option<QuantileFilter>,
    ) -> Option<(QuantileFilter, RecoveredBase, u64)> {
        for idx in [self.latest, 1 - self.latest] {
            let Some(c) = &self.slots[idx] else { continue };
            let Ok(mut filter) = QuantileFilter::restore(&c.bytes) else {
                continue;
            };
            if let Some(replayed) = self.replay_onto(&mut filter, c.seq) {
                return Some((filter, RecoveredBase::Checkpoint { seq: c.seq }, replayed));
            }
        }
        // No checkpoint decoded. A fresh filter works iff the journal
        // still reaches back to item 1 (or nothing was ever applied).
        let covers_all = self.applied == 0 || self.journal.front().is_some_and(|e| e.seq == 1);
        if covers_all {
            let mut filter = build_fresh()?;
            let replayed = self.replay_onto(&mut filter, 0)?;
            return Some((filter, RecoveredBase::Fresh, replayed));
        }
        None
    }

    /// Replay journal entries `(base_seq, applied]` onto `filter`,
    /// suppressing reports (the crashed generation already emitted
    /// them). `None` if the journal does not contiguously cover that
    /// range.
    fn replay_onto(&self, filter: &mut QuantileFilter, base_seq: u64) -> Option<u64> {
        let mut expected = base_seq + 1;
        for e in &self.journal {
            if e.seq <= base_seq {
                continue;
            }
            if e.seq != expected {
                return None;
            }
            let _ = filter.insert(&e.key, e.value);
            expected += 1;
        }
        if expected != self.applied + 1 {
            return None;
        }
        Some(self.applied - base_seq)
    }

    /// Fence the current generation and rebuild the shard's filter.
    /// `None` only when `build_fresh` itself fails — every other path
    /// degrades to [`RecoveredBase::StateLoss`] (restart empty, account
    /// the rollback) rather than giving up.
    pub(crate) fn recover(
        &mut self,
        build_fresh: &mut dyn FnMut() -> Option<QuantileFilter>,
    ) -> Option<Recovered> {
        self.generation += 1;
        let prior_applied = self.applied;
        if let Some((filter, base, replayed)) = self.reconstruct(build_fresh) {
            telemetry::replayed(replayed);
            return Some(Recovered {
                filter,
                base,
                replayed,
                prior_applied,
                recovered_seq: prior_applied,
            });
        }
        // Unrecoverable state: restart the lineage from empty.
        let filter = build_fresh()?;
        self.applied = 0;
        self.journal.clear();
        self.slots = [None, None];
        self.latest = 0;
        Some(Recovered {
            filter,
            base: RecoveredBase::StateLoss,
            replayed: 0,
            prior_applied,
            recovered_seq: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantile_filter::{Criteria, QuantileFilterBuilder};

    fn build() -> QuantileFilter {
        let criteria = match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("criteria: {e:?}"),
        };
        match QuantileFilterBuilder::new(criteria)
            .memory_budget_bytes(16 * 1024)
            .seed(7)
            .try_build()
        {
            Ok(f) => f,
            Err(e) => panic!("build: {e:?}"),
        }
    }

    fn drive(
        rec: &ShardRecovery,
        filter: &mut QuantileFilter,
        items: &[(u64, f64)],
        interval: u64,
    ) {
        for &(k, v) in items {
            let _ = filter.insert(&k, v);
            let mut inner = rec.lock();
            inner.append(k, v);
            if inner.due_seal(interval) {
                inner.seal_checkpoint(0, filter, None);
            }
        }
    }

    fn workload(n: usize) -> Vec<(u64, f64)> {
        (0..n)
            .map(|i| {
                let key = (i as u64 * 2654435761) % 37;
                let value = if i % 9 == 0 { 450.0 } else { (i % 20) as f64 };
                (key, value)
            })
            .collect()
    }

    #[test]
    fn recover_equals_uncrashed_filter() {
        let rec = ShardRecovery::new(16, 16);
        let mut filter = build();
        let items = workload(300);
        drive(&rec, &mut filter, &items, 16);
        let mut inner = rec.lock();
        let recovered = match inner.recover(&mut || Some(build())) {
            Some(r) => r,
            None => panic!("recover failed"),
        };
        assert_eq!(recovered.recovered_seq, 300);
        assert_eq!(recovered.prior_applied, 300);
        assert!(matches!(
            recovered.base,
            RecoveredBase::Checkpoint { .. } | RecoveredBase::Fresh
        ));
        // The rebuilt filter is byte-identical to the live one.
        assert_eq!(recovered.filter.snapshot(), filter.snapshot());
        assert_eq!(inner.generation, 1);
    }

    #[test]
    fn recover_before_first_checkpoint_replays_full_journal() {
        let rec = ShardRecovery::new(1000, 16);
        let mut filter = build();
        let items = workload(50);
        drive(&rec, &mut filter, &items, 1000);
        let mut inner = rec.lock();
        assert_eq!(inner.seals(), 0);
        let recovered = match inner.recover(&mut || Some(build())) {
            Some(r) => r,
            None => panic!("recover failed"),
        };
        assert_eq!(recovered.base, RecoveredBase::Fresh);
        assert_eq!(recovered.replayed, 50);
        assert_eq!(recovered.filter.snapshot(), filter.snapshot());
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let rec = ShardRecovery::new(16, 16);
        let mut filter = build();
        drive(&rec, &mut filter, &workload(200), 16);
        let mut inner = rec.lock();
        // Corrupt the newest slot in place.
        let latest = inner.latest;
        if let Some(c) = inner.slots[latest].as_mut() {
            let mid = c.bytes.len() / 2;
            c.bytes[mid] ^= 0x40;
        } else {
            panic!("no newest checkpoint after 200 items at interval 16");
        }
        let newest_seq = inner.latest_seq();
        let recovered = match inner.recover(&mut || Some(build())) {
            Some(r) => r,
            None => panic!("recover failed"),
        };
        match recovered.base {
            RecoveredBase::Checkpoint { seq } => {
                assert!(seq < newest_seq, "fell back past the corrupt newest")
            }
            other => panic!("expected older-checkpoint base, got {other:?}"),
        }
        assert_eq!(recovered.recovered_seq, 200, "fallback is lossless");
        assert_eq!(recovered.filter.snapshot(), filter.snapshot());
    }

    #[test]
    fn both_checkpoints_corrupt_degrades_to_state_loss() {
        let rec = ShardRecovery::new(16, 16);
        let mut filter = build();
        drive(&rec, &mut filter, &workload(200), 16);
        let mut inner = rec.lock();
        for slot in inner.slots.iter_mut().flatten() {
            slot.bytes[0] ^= 0xFF;
        }
        let recovered = match inner.recover(&mut || Some(build())) {
            Some(r) => r,
            None => panic!("recover failed"),
        };
        assert_eq!(recovered.base, RecoveredBase::StateLoss);
        assert_eq!(recovered.prior_applied, 200);
        assert_eq!(recovered.recovered_seq, 0);
        assert_eq!(inner.applied, 0);
        // The lineage restarts cleanly: new appends journal from seq 1.
        inner.append(1, 1.0);
        assert_eq!(inner.applied, 1);
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let cfg = SupervisorConfig {
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(12),
            ..SupervisorConfig::default()
        };
        assert_eq!(cfg.backoff_for(1), Duration::from_millis(2));
        assert_eq!(cfg.backoff_for(2), Duration::from_millis(4));
        assert_eq!(cfg.backoff_for(3), Duration::from_millis(8));
        assert_eq!(cfg.backoff_for(4), Duration::from_millis(12));
        assert_eq!(cfg.backoff_for(30), Duration::from_millis(12));
    }

    #[test]
    fn config_validation() {
        assert!(SupervisorConfig::default().validate().is_ok());
        let bad = SupervisorConfig {
            checkpoint_interval: 0,
            ..SupervisorConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SupervisorConfig {
            watchdog_deadline: Duration::ZERO,
            ..SupervisorConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn shard_state_codes_are_ordered() {
        assert_eq!(ShardState::Running.code(), 0);
        assert!(ShardState::Suspect.code() < ShardState::Restarting.code());
        assert_eq!(ShardState::Quarantined.code(), 3);
        assert_eq!(ShardState::default(), ShardState::Running);
    }

    /// Replay an arbitrary prefix `items[..upto]` into a fresh filter —
    /// the uncrashed serial reference for the equivalence property.
    fn reference_over(items: &[(u64, f64)], upto: usize) -> QuantileFilter {
        let mut f = build();
        for &(k, v) in &items[..upto] {
            let _ = f.insert(&k, v);
        }
        f
    }

    const PROPTEST_CASES: u32 = if cfg!(miri) { 6 } else { 48 };

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(PROPTEST_CASES))]

        /// The recovery-equivalence property: for ANY crash point, ANY
        /// checkpoint interval, ANY workload, and ANY corruption mode,
        /// `restore(checkpoint) + replay(journal)` rebuilds a filter
        /// byte-identical to an uncrashed run over the same prefix — or,
        /// when corruption forces `StateLoss`, says so honestly with
        /// `recovered_seq == 0` instead of resurrecting silent garbage.
        #[test]
        fn prop_recovery_matches_uncrashed_run(
            raw in proptest::collection::vec((0u64..64, 0.0f64..500.0), 1..300),
            interval in 1u64..40,
            corrupt_mode in 0u8..3,
        ) {
            let crash_at = raw.len();
            let rec = ShardRecovery::new(interval, 16);
            let mut live = build();
            drive(&rec, &mut live, &raw, interval);
            let mut inner = rec.lock();
            match corrupt_mode {
                0 => {}
                1 => {
                    let latest = inner.latest;
                    if let Some(c) = inner.slots[latest].as_mut() {
                        let mid = c.bytes.len() / 2;
                        c.bytes[mid] ^= 0x40;
                    }
                }
                _ => {
                    for slot in inner.slots.iter_mut().flatten() {
                        slot.bytes[0] ^= 0xFF;
                    }
                }
            }
            let had_checkpoint = inner.slots.iter().any(Option::is_some);
            let recovered = match inner.recover(&mut || Some(build())) {
                Some(r) => r,
                None => panic!("recover with a working builder must not fail"),
            };
            proptest::prop_assert_eq!(recovered.prior_applied, crash_at as u64);
            match recovered.base {
                RecoveredBase::Checkpoint { .. } | RecoveredBase::Fresh => {
                    proptest::prop_assert_eq!(recovered.recovered_seq, crash_at as u64);
                    proptest::prop_assert_eq!(
                        recovered.filter.snapshot(),
                        reference_over(&raw, crash_at).snapshot(),
                        "recovered filter diverged: crash_at={} interval={} mode={}",
                        crash_at, interval, corrupt_mode
                    );
                }
                RecoveredBase::StateLoss => {
                    // Only reachable when corruption removed every usable
                    // base AND the journal no longer reaches item 1.
                    proptest::prop_assert!(corrupt_mode == 2 && had_checkpoint);
                    proptest::prop_assert_eq!(recovered.recovered_seq, 0);
                    proptest::prop_assert_eq!(inner.applied, 0);
                }
            }
            // Single-slot corruption is ALWAYS lossless: the journal is
            // pruned only to the older checkpoint's seq, so the older
            // slot (or the journal alone) still covers the gap.
            if corrupt_mode < 2 {
                proptest::prop_assert_eq!(recovered.recovered_seq, crash_at as u64);
            }
        }
    }

    /// Exhaustive model check of the generation fence (runs only under
    /// `RUSTFLAGS='--cfg qf_model'`, via `cargo xtask model`).
    ///
    /// The protocol under verification is the worker's batch commit
    /// (`worker.rs`): take the recovery lock, compare
    /// `RecoveryInner::generation` against the worker's own generation
    /// *under that lock*, and only then journal the batch. The fence
    /// invariant: once the router has bumped the generation, a stale
    /// worker's commit is side-effect-free — `applied` never moves
    /// after the router snapshots it at recovery time.
    #[cfg(qf_model)]
    mod fencing {
        use super::super::ShardRecovery;
        use qf_model::sync::thread;
        use qf_model::{try_model, Checker};
        use std::sync::Arc;

        /// Worker committing concurrently with the router fencing: in
        /// every interleaving the commit either lands before the fence
        /// (and is counted in the router's snapshot) or is refused by
        /// the generation check — the snapshot is final either way.
        #[test]
        fn stale_commit_after_fence_is_side_effect_free() {
            let stats = Checker::new()
                .check(|| {
                    let rec = Arc::new(ShardRecovery::new(8, 4));
                    let worker = {
                        let rec = Arc::clone(&rec);
                        // Worker of generation 0: the real commit shape —
                        // generation checked under the same lock hold as
                        // the append.
                        thread::spawn(move || {
                            let mut inner = rec.lock();
                            if inner.generation == 0 {
                                inner.append(1, 1.0);
                            }
                        })
                    };
                    let snap = {
                        let mut inner = rec.lock();
                        // `build_fresh` refusing means recover() bumps the
                        // fence and leaves every other field untouched —
                        // the minimal router rebuild.
                        let _ = inner.recover(&mut || None);
                        inner.applied
                    };
                    worker.join().unwrap();
                    let final_applied = rec.lock().applied;
                    assert_eq!(
                        final_applied, snap,
                        "stale commit landed after the generation fence"
                    );
                })
                .expect("generation fence must make stale commits side-effect-free");
            assert!(stats.executions > 1, "stats: {stats:?}");
        }

        /// Seeded-bug self-test: the same commit with the generation
        /// check hoisted *outside* the lock hold that appends. The
        /// fence can then land between check and append, and the stale
        /// commit goes through — the checker must catch it.
        #[test]
        fn seeded_check_outside_lock_caught() {
            let v = try_model(|| {
                let rec = Arc::new(ShardRecovery::new(8, 4));
                let worker = {
                    let rec = Arc::clone(&rec);
                    thread::spawn(move || {
                        // BUG under test: generation read under one lock
                        // hold, append under another.
                        let gen_then = rec.lock().generation;
                        if gen_then == 0 {
                            rec.lock().append(1, 1.0);
                        }
                    })
                };
                let snap = {
                    let mut inner = rec.lock();
                    let _ = inner.recover(&mut || None);
                    inner.applied
                };
                worker.join().unwrap();
                let final_applied = rec.lock().applied;
                assert_eq!(
                    final_applied, snap,
                    "stale commit landed after the generation fence"
                );
            });
            let v = v.expect_err("unfenced check-then-append must admit a stale commit");
            assert!(v.message.contains("stale commit"), "{}", v.message);
        }
    }
}
