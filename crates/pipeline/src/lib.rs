//! qf-pipeline: live concurrent ingest for the QuantileFilter stack.
//!
//! The paper's deployments are single-writer — one switch/FPGA pipeline
//! owns the structure. This crate keeps that model while scaling across
//! cores, by promoting the eval harness's hash sharding into a production
//! subsystem: a single-threaded router partitions keys over per-shard
//! worker threads (each owning a private [`quantile_filter::QuantileFilter`])
//! connected by bounded, hand-rolled SPSC ring queues that carry
//! fixed-capacity item *slabs* — one ring slot per slab, so the Lamport
//! and wake handshakes amortize over `slab_capacity` items and each slab
//! drains through the fused `insert_batch` hot path. Per-key state
//! never crosses a shard boundary, so the reported key set is identical
//! to single-threaded execution over the same per-shard item order — the
//! equivalence the stress suite pins against `ShardedDetector`.
//!
//! What the pipeline adds over the batch harness:
//!
//! * **Online ingest** — items are routed as they arrive
//!   ([`Pipeline::ingest`]), not pre-partitioned from a slice.
//! * **Backpressure** — a full shard queue either blocks the router or
//!   sheds the item with exact per-shard accounting
//!   ([`BackpressurePolicy`]).
//! * **Snapshot under load** — a quiesce barrier flows through the FIFO
//!   queues, each worker emits a wire-v2 filter snapshot at the barrier
//!   point, and the frames are merged into one self-delimiting,
//!   checksummed envelope that [`Pipeline::restore`] round-trips
//!   byte-identically ([`Pipeline::snapshot`]).
//! * **Graceful shutdown** — queues drain fully and the final accounting
//!   conserves: offered = enqueued + dropped + rejected and
//!   enqueued = processed + shed + lost ([`Pipeline::shutdown`]).
//! * **Self-healing (opt-in)** — [`Pipeline::launch_supervised`] adds
//!   per-shard checkpoint/replay recovery, a hang watchdog, and restart
//!   with capped backoff, so a crashed or wedged worker costs a bounded,
//!   *accounted* loss window instead of the pipeline. The qf-chaos
//!   harness ([`ChaosPlan`] + [`Pipeline::launch_chaos`]) injects panics,
//!   hangs, poison keys, and checkpoint corruption to prove it.
//!
//! ```
//! use qf_pipeline::{BackpressurePolicy, Pipeline, PipelineConfig};
//! use quantile_filter::Criteria;
//!
//! let mut pipe = Pipeline::launch(PipelineConfig {
//!     shards: 4,
//!     criteria: Criteria::new(5.0, 0.9, 100.0)?,
//!     memory_bytes_per_shard: 32 * 1024,
//!     queue_capacity: 1024,
//!     slab_capacity: 256,
//!     policy: BackpressurePolicy::Block,
//!     seed: 0,
//! })?;
//! for i in 0..50_000u64 {
//!     pipe.ingest(i % 64, 5.0)?;       // background traffic
//!     pipe.ingest(1_000, 500.0)?;      // one hot key
//! }
//! let reported = pipe.poll_reports();
//! let summary = pipe.shutdown()?;
//! assert_eq!(summary.offered, summary.enqueued + summary.dropped);
//! assert!(reported.iter().chain(&summary.reports).any(|r| r.key == 1_000));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Unsafe discipline (QF-L007's compiler-side sibling): every op in
// an `unsafe fn` sits in its own SAFETY-commented block.
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

pub mod chaos;
pub mod flight;
pub mod health;
pub mod pipeline;
pub mod ring;
pub mod snapshot;
pub mod supervisor;
mod telemetry;
pub mod worker;

pub use chaos::{ChaosPlan, Fault};
pub use flight::ShardFlight;
pub use health::{OpsView, ShardHealth};
pub use pipeline::{
    BackpressurePolicy, IngestOutcome, Pipeline, PipelineConfig, PipelineSummary, ReportEvent,
    ShardSummary,
};
pub use ring::{Consumer, Producer, PushError, SpscRing};
pub use snapshot::{PIPELINE_SNAPSHOT_MAGIC, PIPELINE_SNAPSHOT_VERSION};
pub use supervisor::{CrashCause, RecoveredBase, RecoveryRecord, ShardState, SupervisorConfig};

use quantile_filter::QfError;

/// The shard a key routes to, shared by this crate's router and
/// `qf-eval`'s `ShardedDetector` so their per-shard item streams are
/// identical — the foundation of the equivalence guarantee. The `0x5AAD`
/// tweak decorrelates routing from the filters' own key hashing.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    (qf_hash::mix64(key ^ 0x5AAD) % shards as u64) as usize
}

/// Pipeline failures. Everything is typed — worker panics surface as
/// [`Self::WorkerDied`], never as a hang or a propagated panic.
#[derive(Debug)]
pub enum PipelineError {
    /// The configuration cannot be launched.
    InvalidConfig {
        /// What was wrong with it.
        reason: String,
    },
    /// A shard worker exited (panic or premature death); the pipeline can
    /// no longer make progress on that shard.
    WorkerDied {
        /// The dead worker's shard index.
        shard: usize,
    },
    /// A snapshot envelope or per-shard frame failed to decode.
    Snapshot(QfError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid pipeline config: {reason}"),
            Self::WorkerDied { shard } => write!(f, "worker for shard {shard} died"),
            Self::Snapshot(e) => write!(f, "pipeline snapshot error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QfError> for PipelineError {
    fn from(e: QfError) -> Self {
        Self::Snapshot(e)
    }
}
