//! Feature-gated telemetry hooks for the pipeline hot path.
//!
//! Same contract as `quantile-filter`'s hooks: with the `telemetry` cargo
//! feature **off** (the default) every function is an empty
//! `#[inline(always)]` body and the router/worker loops carry no trace of
//! instrumentation; with it **on**, each hook is one relaxed atomic op on
//! the process-wide [`qf_telemetry::global`] registry.
//!
//! The registry counters are process aggregates (the registry's naming
//! rules forbid open label vocabularies, and shard counts are dynamic);
//! exact per-shard accounting always travels in
//! [`ShardSummary`](crate::ShardSummary) instead.

#[cfg(feature = "telemetry")]
mod hooks {
    use qf_telemetry::{CounterId, GaugeId, GlobalRecorder, Recorder};

    /// An item was accepted into a shard queue.
    #[inline(always)]
    pub fn enqueued() {
        GlobalRecorder.count(CounterId::PipelineEnqueued, 1);
        GlobalRecorder.gauge_add(GaugeId::PipelineQueueDepth, 1);
    }

    /// A worker popped a slab of `n` items off its queue — one counter
    /// update per slab, not per item (the slab-granularity contract).
    #[inline(always)]
    pub fn dequeued_n(n: u64) {
        GlobalRecorder.count(CounterId::PipelineDequeued, n);
        GlobalRecorder.gauge_add(GaugeId::PipelineQueueDepth, -(n as i64));
    }

    /// An item was dropped at the router under `DropNewest` backpressure.
    #[inline(always)]
    pub fn dropped() {
        GlobalRecorder.count(CounterId::PipelineDropped, 1);
    }

    /// A worker's filter emitted a report.
    #[inline(always)]
    pub fn report() {
        GlobalRecorder.count(CounterId::PipelineReports, 1);
    }

    /// A worker discarded a whole slab of `n` items against one shed
    /// credit (slab-granular `DropOldest` / `ShedFair`).
    #[inline(always)]
    pub fn shed_n(n: u64) {
        GlobalRecorder.count(CounterId::PipelineShedOldest, n);
    }

    /// An item was rejected because its shard was down or quarantined.
    #[inline(always)]
    pub fn shard_down_rejected() {
        GlobalRecorder.count(CounterId::PipelineShardDownRejected, 1);
    }

    /// The supervisor restarted a shard worker.
    #[inline(always)]
    pub fn restart() {
        GlobalRecorder.count(CounterId::PipelineRestarts, 1);
    }

    /// A shard sealed a recovery checkpoint.
    #[inline(always)]
    pub fn checkpoint_sealed() {
        GlobalRecorder.count(CounterId::PipelineCheckpointSeals, 1);
    }

    /// Recovery replayed `n` journal items onto a rebuilt filter.
    #[inline(always)]
    pub fn replayed(n: u64) {
        GlobalRecorder.count(CounterId::PipelineReplayed, n);
    }

    /// A shard changed lifecycle state; `delta` is the difference of the
    /// state codes, so the gauge holds the sum of codes across shards.
    #[inline(always)]
    pub fn shard_state_delta(delta: i64) {
        GlobalRecorder.gauge_add(GaugeId::PipelineShardState, delta);
    }
}

#[cfg(not(feature = "telemetry"))]
mod hooks {
    macro_rules! noop_hooks {
        ($($name:ident),+ $(,)?) => {
            $(
                /// No-op: telemetry is compiled out.
                #[inline(always)]
                pub fn $name() {}
            )+
        };
    }

    noop_hooks! {
        enqueued,
        dropped,
        report,
        shard_down_rejected,
        restart,
        checkpoint_sealed,
    }

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn dequeued_n(_n: u64) {}

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn shed_n(_n: u64) {}

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn replayed(_n: u64) {}

    /// No-op: telemetry is compiled out.
    #[inline(always)]
    pub fn shard_state_delta(_delta: i64) {}
}

pub(crate) use hooks::*;
