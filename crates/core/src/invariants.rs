//! The invariant machine: executable structural invariants across the
//! QuantileFilter stack.
//!
//! Every structure in the stack implements
//! [`CheckInvariants`](qf_sketch::invariants::CheckInvariants) — re-exported
//! here — which audits the relationships that must hold at all times:
//!
//! | structure | invariants |
//! |---|---|
//! | [`CandidatePart`](crate::candidate::CandidatePart) | slot-vector length = `m × b`; bucket hash range = `m`; free slots fully zeroed; occupied fingerprints unique per bucket |
//! | [`CountSketch`](qf_sketch::CountSketch) / [`CountMinSketch`](qf_sketch::CountMinSketch) | cell grid = `d × w`; hash-family arity and range match the grid; `d ≤ MAX_DEPTH` (CS) |
//! | [`QuantileFilter`](crate::QuantileFilter) | both parts; occupancy ≤ recorded candidate inserts |
//! | [`EpochFilter`](crate::epoch::EpochFilter) | epoch progress ≤ epoch length; live memory tracks the recorded budget; inner filter |
//! | [`MultiCriteriaFilter`](crate::MultiCriteriaFilter) | non-empty criteria list; inner filter |
//!
//! ## When the checks run
//!
//! * **On demand** — `check_invariants()` is always compiled; call it after
//!   restores, between replay segments, or from a harness. It returns the
//!   violation as data and never panics.
//! * **`strict-invariants` feature** — mutation hot spots (the
//!   candidate⇄vague exchange, the epoch rollover) re-audit themselves
//!   after every mutation and panic on violation. The checks are linear in
//!   the structure size, so this mode is for test/CI builds, not
//!   production streams.
//!
//! The differential-oracle integration test (`tests/differential_oracle.rs`)
//! replays traces against an exact per-key Qweight model and interleaves
//! `check_invariants()` calls, so any drift between the optimized structure
//! and the paper's math surfaces as a violation with a named structure and
//! relationship rather than a wrong report somewhere downstream.

pub use qf_sketch::invariants::{CheckInvariants, InvariantViolation};

#[cfg(test)]
mod tests {
    use super::CheckInvariants;
    use crate::builder::QuantileFilterBuilder;
    use crate::criteria::Criteria;
    use crate::epoch::{EpochFilter, FixedSize};
    use crate::multi::MultiCriteriaFilter;
    use qf_sketch::CountSketch;

    fn criteria() -> Criteria {
        match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("{e}"),
        }
    }

    fn filter() -> crate::QuantileFilter<CountSketch<i8>> {
        QuantileFilterBuilder::new(criteria())
            .candidate_buckets(64)
            .vague_dims(3, 512)
            .seed(11)
            .build()
    }

    #[test]
    fn fresh_filter_passes() {
        let qf = filter();
        assert!(qf.check_invariants().is_ok());
    }

    #[test]
    fn filter_passes_after_mixed_workload() {
        let mut qf = filter();
        for i in 0..20_000u64 {
            let key = i % 97;
            let value = if key % 7 == 0 { 400.0 } else { 20.0 };
            let _ = qf.insert(&key, value);
            if i % 31 == 0 {
                qf.delete(&(key / 2));
            }
        }
        if let Err(v) = qf.check_invariants() {
            panic!("violation after workload: {v}");
        }
    }

    #[test]
    fn epoch_filter_passes_across_rollovers() {
        let mut ef: EpochFilter = EpochFilter::new(criteria(), 16 * 1024, 1_000, 5, FixedSize);
        for i in 0..5_500u64 {
            let _ = ef.insert(&(i % 50), if i % 9 == 0 { 300.0 } else { 10.0 });
        }
        if let Err(v) = ef.check_invariants() {
            panic!("violation across rollovers: {v}");
        }
    }

    #[test]
    fn multi_criteria_filter_passes() {
        let mut m = MultiCriteriaFilter::new(filter(), vec![criteria(), Criteria::default()]);
        for i in 0..5_000u64 {
            let _ = m.insert(&(i % 40), if i % 5 == 0 { 500.0 } else { 30.0 });
        }
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn violation_reports_structure_and_detail() {
        let v = super::InvariantViolation::new("CandidatePart", "slot vector length 3 != 4");
        let msg = v.to_string();
        assert!(msg.contains("CandidatePart"), "{msg}");
        assert!(msg.contains("slot vector length"), "{msg}");
    }
}
