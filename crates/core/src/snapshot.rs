//! Versioned, checksummed snapshot/restore for crash recovery.
//!
//! A long-running stream processor checkpoints its QuantileFilter so a
//! crash loses only the items since the last checkpoint, not the whole
//! epoch of accumulated Qweights. The format captures *every* piece of
//! mutable state — hash seeds, candidate slots, vague-part counters, both
//! RNG streams, statistics, and (for [`EpochFilter`]) the epoch counters —
//! so a restored filter emits a byte-identical report sequence from the
//! resume point.
//!
//! ## Wire format (version 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QFSN"
//! 4       4     format version (u32 LE) — currently 2
//! 8       4     total length (u32 LE): size of the whole envelope,
//!               checksum included — makes the snapshot self-delimiting
//! 12      8     config digest (u64 LE): xxh64(config bytes, DIGEST_SEED)
//! 20      1     container tag: 1 = QuantileFilter, 2 = EpochFilter,
//!               3 = MultiCriteriaFilter
//! 21      4     config length (u32 LE)
//! 25      …     config bytes   (structural parameters; covered by digest)
//! …       …     state bytes    (slots, counters, RNG states, stats)
//! end−8   8     checksum (u64 LE): xxh64 over ALL preceding bytes
//! ```
//!
//! All integers are little-endian; `f64`s are stored as their IEEE-754 bit
//! patterns. The trailing checksum covers the entire envelope including
//! the header, so any single bit flip anywhere in the snapshot is caught:
//! a flip before the checksum changes the computed value, a flip inside
//! the checksum mismatches the recomputed one. The separate config digest
//! additionally binds the structural parameters, giving a targeted
//! "config digest mismatch" diagnostic when only the geometry was damaged.
//!
//! Version 2 added the total-length field: the envelope declares its own
//! size, so a buffer carrying extra bytes after the checksum is rejected
//! with a targeted "trailing garbage" diagnostic instead of the trailing
//! bytes being silently folded into the checksum comparison. Embedders
//! that frame snapshots inside larger files get an exact byte count.
//!
//! ## Version policy
//!
//! The version is bumped whenever the byte layout changes incompatibly.
//! Readers reject other versions with [`QfError::VersionMismatch`] rather
//! than guessing — restore-time migration belongs to the embedder, which
//! knows where old checkpoints live.
//!
//! Decode order: length/magic → version → declared-length bounds →
//! whole-file checksum → container tag → config bounds → config digest →
//! field parsing. Every failure is a typed [`QfError`]; no input, however
//! adversarial, panics or allocates unbounded memory (dimension fields
//! are capped before any allocation).

use crate::candidate::CandidatePart;
use crate::criteria::Criteria;
use crate::epoch::{EpochFilter, ResizePolicy};
use crate::error::QfError;
use crate::filter::{FilterStats, QuantileFilter};
use crate::multi::MultiCriteriaFilter;
use crate::strategy::ElectionStrategy;
use qf_hash::wire::{ByteReader, ByteWriter};
use qf_hash::xxh64;
use qf_sketch::snapshot::{SketchShape, SketchState};
use qf_sketch::{SketchCounter, WeightSketch};

/// First four bytes of every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"QFSN";

/// The format version this build writes and the only one it reads.
///
/// History: 1 = initial envelope; 2 = added the total-length field at
/// offset 8 (self-delimiting envelope, trailing-garbage detection).
pub const SNAPSHOT_VERSION: u32 = 2;

/// Container tag for a bare [`QuantileFilter`].
pub const TAG_FILTER: u8 = 1;
/// Container tag for an [`EpochFilter`].
pub const TAG_EPOCH: u8 = 2;
/// Container tag for a [`MultiCriteriaFilter`].
pub const TAG_MULTI: u8 = 3;

/// Seed for the config digest (distinct from the checksum seed so the two
/// hashes never collide by construction).
const DIGEST_SEED: u64 = 0x5EED_D16E_57C0_4F16;
/// Seed for the whole-envelope checksum.
const CHECKSUM_SEED: u64 = 0x5EED_C4EC_5A11_D00D;

/// Bound on the serialized criteria list of a [`MultiCriteriaFilter`] —
/// a corrupted count field must not drive a huge allocation.
const MAX_SNAPSHOT_CRITERIA: u32 = 1 << 20;

// Header = magic(4) + version(4) + total_len(4) + digest(8) + tag(1) +
// config_len(4); the envelope additionally carries the trailing 8-byte
// checksum.
const HEADER_BYTES: usize = 25;
const MIN_SNAPSHOT_BYTES: usize = HEADER_BYTES + 8;

fn corrupt(reason: &str) -> QfError {
    QfError::CorruptSnapshot {
        reason: reason.to_string(),
    }
}

/// Wrap config + state sections into the checksummed envelope.
fn seal(tag: u8, config: &[u8], state: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_bytes(&SNAPSHOT_MAGIC);
    w.put_u32(SNAPSHOT_VERSION);
    let total = HEADER_BYTES + config.len() + state.len() + 8;
    w.put_u32(total as u32);
    w.put_u64(xxh64(config, DIGEST_SEED));
    w.put_u8(tag);
    w.put_u32(config.len() as u32);
    w.put_bytes(config);
    w.put_bytes(state);
    let checksum = xxh64(w.as_slice(), CHECKSUM_SEED);
    w.put_u64(checksum);
    w.into_bytes()
}

/// Validate the envelope and split it into `(config, state)` sections.
fn open(bytes: &[u8], want_tag: u8) -> Result<(&[u8], &[u8]), QfError> {
    if bytes.len() < MIN_SNAPSHOT_BYTES {
        return Err(corrupt("snapshot shorter than minimal envelope"));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic (not a QuantileFilter snapshot)"));
    }
    let mut header = ByteReader::new(&bytes[4..HEADER_BYTES]);
    let (version, total_len, digest, tag, config_len) = (|| -> Result<_, qf_hash::WireError> {
        Ok((
            header.get_u32()?,
            header.get_u32()? as usize,
            header.get_u64()?,
            header.get_u8()?,
            header.get_u32()? as usize,
        ))
    })()
    .map_err(|_| corrupt("truncated header"))?;
    if version != SNAPSHOT_VERSION {
        return Err(QfError::VersionMismatch {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    // The envelope is self-delimiting (version 2): the declared length
    // must match the buffer exactly, so both truncation and trailing
    // garbage get targeted diagnostics before any checksum math.
    if total_len < MIN_SNAPSHOT_BYTES {
        return Err(corrupt("declared length shorter than minimal envelope"));
    }
    if bytes.len() < total_len {
        return Err(corrupt("snapshot truncated (shorter than declared length)"));
    }
    if bytes.len() > total_len {
        return Err(corrupt("trailing garbage after snapshot envelope"));
    }
    let (body, trailer) = bytes.split_at(total_len - 8);
    let stored = u64::from_le_bytes(trailer.try_into().unwrap_or([0; 8]));
    if xxh64(body, CHECKSUM_SEED) != stored {
        return Err(corrupt("checksum mismatch"));
    }
    if tag != want_tag {
        return Err(corrupt("container tag mismatch (wrong filter type)"));
    }
    let sections = &body[HEADER_BYTES..];
    if config_len > sections.len() {
        return Err(corrupt("config length out of range"));
    }
    let (config, state) = sections.split_at(config_len);
    if xxh64(config, DIGEST_SEED) != digest {
        return Err(corrupt("config digest mismatch"));
    }
    Ok((config, state))
}

fn strategy_tag(s: ElectionStrategy) -> u8 {
    match s {
        ElectionStrategy::Comparative => 1,
        ElectionStrategy::Probabilistic => 2,
        ElectionStrategy::Forceful => 3,
    }
}

fn strategy_from_tag(tag: u8) -> Result<ElectionStrategy, QfError> {
    match tag {
        1 => Ok(ElectionStrategy::Comparative),
        2 => Ok(ElectionStrategy::Probabilistic),
        3 => Ok(ElectionStrategy::Forceful),
        _ => Err(corrupt("unknown election strategy tag")),
    }
}

fn write_criteria(c: &Criteria, w: &mut ByteWriter) {
    w.put_f64(c.epsilon());
    w.put_f64(c.delta());
    w.put_f64(c.threshold());
}

fn read_criteria(r: &mut ByteReader<'_>) -> Result<Criteria, QfError> {
    let epsilon = r.get_f64().map_err(|_| corrupt("truncated criteria"))?;
    let delta = r.get_f64().map_err(|_| corrupt("truncated criteria"))?;
    let threshold = r.get_f64().map_err(|_| corrupt("truncated criteria"))?;
    Criteria::new(epsilon, delta, threshold).map_err(|e| corrupt(&e.to_string()))
}

/// Write a filter's structural parameters (digest-covered).
fn write_filter_config<S>(qf: &QuantileFilter<S>, w: &mut ByteWriter)
where
    S: WeightSketch + SketchState,
{
    write_criteria(&qf.default_criteria(), w);
    w.put_u8(strategy_tag(qf.strategy()));
    let cand = qf.candidate_part();
    w.put_u64(cand.buckets() as u64);
    w.put_u64(cand.bucket_len() as u64);
    w.put_u64(cand.bucket_seed());
    w.put_u64(cand.fp_seed());
    qf.vague_part().inner().shape().write(w);
}

/// Write a filter's mutable state (slots, counters, RNGs, stats).
fn write_filter_state<S>(qf: &QuantileFilter<S>, w: &mut ByteWriter)
where
    S: WeightSketch + SketchState,
{
    w.put_u64(qf.rounder_state());
    w.put_u64(qf.rng_state());
    let stats = qf.stats();
    w.put_u64(stats.candidate_hits);
    w.put_u64(stats.candidate_inserts);
    w.put_u64(stats.vague_visits);
    w.put_u64(stats.exchanges);
    w.put_u64(stats.reports);
    qf.candidate_part().write_state(w);
    qf.vague_part().inner().write_state(w);
}

/// Parse config + state sections back into a filter. Both readers must be
/// fully consumed, otherwise the snapshot carries unexplained bytes.
fn read_filter<S>(
    config: &mut ByteReader<'_>,
    state: &mut ByteReader<'_>,
) -> Result<QuantileFilter<S>, QfError>
where
    S: WeightSketch + SketchState,
{
    let criteria = read_criteria(config)?;
    let strategy_byte = config.get_u8().map_err(|_| corrupt("truncated config"))?;
    let strategy = strategy_from_tag(strategy_byte)?;
    let trunc = |_| corrupt("truncated config");
    let buckets = config.get_u64().map_err(trunc)?;
    let bucket_len = config.get_u64().map_err(trunc)?;
    let bucket_seed = config.get_u64().map_err(trunc)?;
    let fp_seed = config.get_u64().map_err(trunc)?;
    let shape = SketchShape::read(config).map_err(|e| corrupt(&e.to_string()))?;

    let strunc = |_| corrupt("truncated state");
    let rounder_state = state.get_u64().map_err(strunc)?;
    let rng_state = state.get_u64().map_err(strunc)?;
    let stats = FilterStats {
        candidate_hits: state.get_u64().map_err(strunc)?,
        candidate_inserts: state.get_u64().map_err(strunc)?,
        vague_visits: state.get_u64().map_err(strunc)?,
        exchanges: state.get_u64().map_err(strunc)?,
        reports: state.get_u64().map_err(strunc)?,
    };
    let candidate = CandidatePart::from_state(buckets, bucket_len, bucket_seed, fp_seed, state)
        .map_err(|e| corrupt(&e.to_string()))?;
    let sketch = S::from_state(shape, state).map_err(|e| corrupt(&e.to_string()))?;
    Ok(QuantileFilter::from_restored(
        criteria,
        candidate,
        sketch,
        strategy,
        rounder_state,
        rng_state,
        stats,
    ))
}

fn ensure_drained(config: &ByteReader<'_>, state: &ByteReader<'_>) -> Result<(), QfError> {
    if !config.is_empty() {
        return Err(corrupt("trailing bytes in config section"));
    }
    if !state.is_empty() {
        return Err(corrupt("trailing bytes in state section"));
    }
    Ok(())
}

impl<S: WeightSketch + SketchState> QuantileFilter<S> {
    /// Serialize the complete filter state into the versioned envelope.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut config = ByteWriter::new();
        write_filter_config(self, &mut config);
        let mut state = ByteWriter::new();
        write_filter_state(self, &mut state);
        seal(TAG_FILTER, config.as_slice(), state.as_slice())
    }

    /// Rebuild a filter from [`Self::snapshot`] bytes. The restored filter
    /// continues the stream exactly where the original left off: same
    /// Qweights, same RNG positions, hence a byte-identical report stream.
    pub fn restore(bytes: &[u8]) -> Result<Self, QfError> {
        let (config, state) = open(bytes, TAG_FILTER)?;
        let mut config = ByteReader::new(config);
        let mut state = ByteReader::new(state);
        let filter = read_filter(&mut config, &mut state)?;
        ensure_drained(&config, &state)?;
        Ok(filter)
    }
}

impl<C: SketchCounter, P: ResizePolicy> EpochFilter<C, P> {
    /// Serialize the epoch manager and its inner filter.
    ///
    /// The resize policy is **not** serialized — policies may carry
    /// arbitrary state; [`Self::restore`] takes a fresh one.
    pub fn snapshot(&self) -> Vec<u8> {
        let (filter, criteria, seed, epoch_len, items, memory, epochs) = self.snapshot_parts();
        let mut config = ByteWriter::new();
        w_epoch_config(&mut config, epoch_len, filter);
        let mut state = ByteWriter::new();
        write_criteria(&criteria, &mut state);
        state.put_u64(seed);
        state.put_u64(items);
        state.put_u64(memory);
        state.put_u64(epochs);
        write_filter_state(filter, &mut state);
        seal(TAG_EPOCH, config.as_slice(), state.as_slice())
    }

    /// Rebuild from [`Self::snapshot`] bytes, resuming mid-epoch with the
    /// supplied resize policy.
    pub fn restore(bytes: &[u8], policy: P) -> Result<Self, QfError> {
        let (config, state) = open(bytes, TAG_EPOCH)?;
        let mut config = ByteReader::new(config);
        let mut state = ByteReader::new(state);
        let epoch_len = config.get_u64().map_err(|_| corrupt("truncated config"))?;
        if epoch_len == 0 {
            return Err(corrupt("epoch length must be positive"));
        }
        let strunc = |_| corrupt("truncated state");
        let criteria = read_criteria(&mut state)?;
        let seed = state.get_u64().map_err(strunc)?;
        let items = state.get_u64().map_err(strunc)?;
        let memory = state.get_u64().map_err(strunc)?;
        let epochs = state.get_u64().map_err(strunc)?;
        if items > epoch_len {
            return Err(corrupt("epoch progress exceeds epoch length"));
        }
        let filter = read_filter(&mut config, &mut state)?;
        ensure_drained(&config, &state)?;
        let memory = usize::try_from(memory).map_err(|_| corrupt("memory budget out of range"))?;
        Ok(Self::from_restored(
            filter, criteria, seed, epoch_len, items, memory, epochs, policy,
        ))
    }
}

// Free function (not a closure) so the generic filter type parameter is
// explicit at the call site.
fn w_epoch_config<C: SketchCounter>(
    w: &mut ByteWriter,
    epoch_len: u64,
    filter: &QuantileFilter<qf_sketch::CountSketch<C>>,
) {
    w.put_u64(epoch_len);
    write_filter_config(filter, w);
}

impl<S: WeightSketch + SketchState> MultiCriteriaFilter<S> {
    /// Serialize the criteria list and the wrapped filter.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut config = ByteWriter::new();
        config.put_u32(self.criteria().len() as u32);
        for c in self.criteria() {
            write_criteria(c, &mut config);
        }
        write_filter_config(self.inner(), &mut config);
        let mut state = ByteWriter::new();
        write_filter_state(self.inner(), &mut state);
        seal(TAG_MULTI, config.as_slice(), state.as_slice())
    }

    /// Rebuild from [`Self::snapshot`] bytes.
    pub fn restore(bytes: &[u8]) -> Result<Self, QfError> {
        let (config, state) = open(bytes, TAG_MULTI)?;
        let mut config = ByteReader::new(config);
        let mut state = ByteReader::new(state);
        let count = config.get_u32().map_err(|_| corrupt("truncated config"))?;
        if count == 0 {
            return Err(corrupt("need at least one criterion"));
        }
        if count > MAX_SNAPSHOT_CRITERIA {
            return Err(corrupt("criteria count out of range"));
        }
        let mut criteria = Vec::with_capacity(count as usize);
        for _ in 0..count {
            criteria.push(read_criteria(&mut config)?);
        }
        let filter = read_filter(&mut config, &mut state)?;
        ensure_drained(&config, &state)?;
        Self::try_new(filter, criteria)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QuantileFilterBuilder;
    use crate::epoch::FixedSize;
    use qf_sketch::{CountMinSketch, CountSketch};

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    fn warm_filter() -> QuantileFilter {
        let mut qf = QuantileFilterBuilder::new(crit())
            .candidate_buckets(32)
            .bucket_len(4)
            .vague_dims(3, 256)
            .seed(77)
            .build();
        for k in 0u64..500 {
            qf.insert(&k, if k % 9 == 0 { 500.0 } else { 5.0 });
        }
        qf
    }

    #[test]
    fn roundtrip_preserves_queries_and_stats() {
        let qf = warm_filter();
        let restored: QuantileFilter = QuantileFilter::restore(&qf.snapshot()).unwrap();
        for k in 0u64..500 {
            assert_eq!(qf.query(&k), restored.query(&k), "key {k}");
        }
        assert_eq!(qf.stats().reports, restored.stats().reports);
        assert_eq!(qf.stats().vague_visits, restored.stats().vague_visits);
        assert_eq!(qf.memory_bytes(), restored.memory_bytes());
    }

    #[test]
    fn roundtrip_resumes_byte_identical_reports() {
        let mut qf = warm_filter();
        let mut restored: QuantileFilter = QuantileFilter::restore(&qf.snapshot()).unwrap();
        for i in 0..2000u64 {
            let key = i % 37;
            let v = if key == 5 { 400.0 } else { 10.0 };
            assert_eq!(qf.insert(&key, v), restored.insert(&key, v), "item {i}");
        }
    }

    #[test]
    fn snapshot_is_deterministic() {
        let qf = warm_filter();
        assert_eq!(qf.snapshot(), qf.snapshot());
    }

    #[test]
    fn cms_filter_roundtrips() {
        let mut qf: QuantileFilter<CountMinSketch<i32>> = QuantileFilterBuilder::new(crit())
            .candidate_buckets(8)
            .bucket_len(2)
            .vague_dims(3, 128)
            .seed(5)
            .build_with_sketch(CountMinSketch::new(3, 128, 5));
        for k in 0u64..200 {
            qf.insert(&k, 500.0);
        }
        let restored: QuantileFilter<CountMinSketch<i32>> =
            QuantileFilter::restore(&qf.snapshot()).unwrap();
        for k in 0u64..200 {
            assert_eq!(qf.query(&k), restored.query(&k));
        }
    }

    #[test]
    fn epoch_filter_resumes_mid_epoch() {
        let mut ef: EpochFilter = EpochFilter::new(crit(), 8 * 1024, 300, 3, FixedSize);
        for i in 0..450u64 {
            ef.insert(&(i % 11), if i % 11 == 4 { 400.0 } else { 20.0 });
        }
        let mut restored: EpochFilter = EpochFilter::restore(&ef.snapshot(), FixedSize).unwrap();
        assert_eq!(ef.epochs_completed(), restored.epochs_completed());
        assert_eq!(ef.remaining_in_epoch(), restored.remaining_in_epoch());
        for i in 0..600u64 {
            let key = i % 11;
            let v = if key == 4 { 400.0 } else { 20.0 };
            assert_eq!(ef.insert(&key, v), restored.insert(&key, v), "item {i}");
        }
        assert_eq!(ef.epochs_completed(), restored.epochs_completed());
    }

    #[test]
    fn multi_criteria_filter_roundtrips() {
        let filter = QuantileFilterBuilder::new(Criteria::default())
            .candidate_buckets(64)
            .vague_dims(3, 512)
            .seed(13)
            .build();
        let mut m = MultiCriteriaFilter::new(
            filter,
            vec![crit(), Criteria::new(3.0, 0.5, 400.0).unwrap()],
        );
        for i in 0..300u64 {
            m.insert(&(i % 7), 450.0);
        }
        let mut restored: MultiCriteriaFilter<CountSketch<i8>> =
            MultiCriteriaFilter::restore(&m.snapshot()).unwrap();
        assert_eq!(m.criteria_count(), restored.criteria_count());
        for k in 0u64..7 {
            assert_eq!(m.query(&k, 0), restored.query(&k, 0));
            assert_eq!(m.query(&k, 1), restored.query(&k, 1));
        }
        for i in 0..300u64 {
            assert_eq!(m.insert(&(i % 7), 450.0), restored.insert(&(i % 7), 450.0));
        }
    }

    #[test]
    fn wrong_container_tag_rejected() {
        let qf = warm_filter();
        let err = MultiCriteriaFilter::<CountSketch<i8>>::restore(&qf.snapshot()).unwrap_err();
        assert!(matches!(err, QfError::CorruptSnapshot { reason } if reason.contains("tag")));
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = warm_filter().snapshot();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = QuantileFilter::<CountSketch<i8>>::restore(&bytes).unwrap_err();
        assert_eq!(
            err,
            QfError::VersionMismatch {
                found: 99,
                supported: SNAPSHOT_VERSION
            }
        );
    }

    #[test]
    fn every_single_bit_flip_is_detected_in_small_snapshot() {
        // Exhaustive single-bit-flip sweep over a small but complete
        // snapshot: every flip must surface as a typed error (never a
        // silently-accepted wrong filter, never a panic).
        let mut qf = QuantileFilterBuilder::new(crit())
            .candidate_buckets(2)
            .bucket_len(2)
            .vague_dims(2, 8)
            .seed(3)
            .build();
        for k in 0u64..20 {
            qf.insert(&k, 300.0);
        }
        let bytes = qf.snapshot();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut dam = bytes.clone();
                dam[byte] ^= 1 << bit;
                assert!(
                    QuantileFilter::<CountSketch<i8>>::restore(&dam).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn adversarial_resealed_huge_dims_rejected() {
        // An attacker who can rewrite the snapshot can also fix up the
        // digest and checksum, so integrity hashing alone is no defense:
        // the dimension caps must refuse to allocate for absurd geometry.
        let mut config = ByteWriter::new();
        write_criteria(&crit(), &mut config);
        config.put_u8(1); // comparative
        config.put_u64(u64::MAX); // buckets
        config.put_u64(u64::MAX); // bucket_len
        config.put_u64(1); // bucket seed
        config.put_u64(2); // fp seed
        qf_sketch::snapshot::SketchShape {
            kind: qf_sketch::SKETCH_KIND_CS,
            counter_bytes: 1,
            rows: u64::MAX,
            width: u64::MAX,
        }
        .write(&mut config);
        let bytes = seal(TAG_FILTER, config.as_slice(), &[]);
        let err = QuantileFilter::<CountSketch<i8>>::restore(&bytes).unwrap_err();
        assert!(matches!(err, QfError::CorruptSnapshot { .. }), "{err:?}");
    }

    #[test]
    fn trailing_garbage_rejected_for_every_container() {
        let qf = warm_filter();
        let ef: EpochFilter = EpochFilter::new(crit(), 8 * 1024, 300, 3, FixedSize);
        let m = MultiCriteriaFilter::new(
            QuantileFilterBuilder::new(Criteria::default())
                .candidate_buckets(8)
                .vague_dims(2, 64)
                .seed(1)
                .build(),
            vec![crit()],
        );
        type RestoreErr = fn(&[u8]) -> Option<QfError>;
        let cases: [(&str, Vec<u8>, RestoreErr); 3] = [
            ("filter", qf.snapshot(), |b| {
                QuantileFilter::<CountSketch<i8>>::restore(b).err()
            }),
            ("epoch", ef.snapshot(), |b| {
                EpochFilter::<i8, FixedSize>::restore(b, FixedSize).err()
            }),
            ("multi", m.snapshot(), |b| {
                MultiCriteriaFilter::<CountSketch<i8>>::restore(b).err()
            }),
        ];
        for (name, bytes, restore) in cases {
            for extra in [1usize, 8, 1024] {
                let mut dam = bytes.clone();
                dam.extend(std::iter::repeat_n(0xAB, extra));
                let err = restore(&dam)
                    .unwrap_or_else(|| panic!("{name} snapshot +{extra} bytes accepted"));
                assert!(
                    matches!(
                        &err,
                        QfError::CorruptSnapshot { reason } if reason.contains("trailing garbage")
                    ),
                    "{name} +{extra}: wrong diagnostic {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected_even_with_resealed_checksum() {
        // An adversary appends garbage and re-computes the trailing
        // checksum over the extended buffer: the declared total length
        // still gives them away.
        let bytes = warm_filter().snapshot();
        let mut dam = bytes[..bytes.len() - 8].to_vec();
        dam.extend_from_slice(&[0xCD; 16]);
        let checksum = xxh64(&dam, CHECKSUM_SEED);
        dam.extend_from_slice(&checksum.to_le_bytes());
        let err = QuantileFilter::<CountSketch<i8>>::restore(&dam).unwrap_err();
        assert!(
            matches!(
                &err,
                QfError::CorruptSnapshot { reason } if reason.contains("trailing garbage")
            ),
            "resealed garbage got a different diagnostic: {err:?}"
        );
    }

    #[test]
    fn declared_length_skew_rejected() {
        let bytes = warm_filter().snapshot();
        // Understate the length: the buffer now looks like it carries
        // trailing garbage.
        let mut dam = bytes.clone();
        dam[8..12].copy_from_slice(&((bytes.len() as u32) - 1).to_le_bytes());
        assert!(QuantileFilter::<CountSketch<i8>>::restore(&dam).is_err());
        // Overstate it: truncation.
        let mut dam = bytes.clone();
        dam[8..12].copy_from_slice(&((bytes.len() as u32) + 1).to_le_bytes());
        assert!(QuantileFilter::<CountSketch<i8>>::restore(&dam).is_err());
        // Understate below the minimal envelope.
        let mut dam = bytes;
        dam[8..12].copy_from_slice(&4u32.to_le_bytes());
        assert!(QuantileFilter::<CountSketch<i8>>::restore(&dam).is_err());
    }

    #[test]
    fn truncation_at_every_length_rejected() {
        let bytes = warm_filter().snapshot();
        for len in 0..bytes.len() {
            assert!(
                QuantileFilter::<CountSketch<i8>>::restore(&bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }
}
