//! Feature-gated flight-recorder trace hooks for the filter hot path.
//!
//! Same contract as [`crate::telemetry`] but for *event trails* instead
//! of aggregate counters: with the `trace` cargo feature **off** (the
//! default) every function here is an empty `#[inline(always)]` body and
//! each call site compiles to nothing, so the untraced filter is
//! bit-identical to the pre-trace crate. With the feature **on**, each
//! hook is one thread-local lookup plus (if a recorder is installed —
//! the pipeline worker installs one per shard via [`qf_trace::tls`]) a
//! wait-free ring-buffer write. Threads without a recorder drop events
//! after the lookup, so single-threaded eval runs stay cheap.
//!
//! The hooks cover the control-flow joints worth replaying after a
//! crash: epoch rollovers, candidate elections (both verdicts),
//! evictions, and fired reports. Pure counters (hits, inserts,
//! bucket-full) stay telemetry-only — a flight recorder records
//! *decisions*, not traffic volume. Nothing here reads a clock: events
//! are ordered by qf-trace's global sequence counter (QF-L002).

#[cfg(feature = "trace")]
mod hooks {
    use qf_trace::{tls, EventKind};

    /// The reset manager rolled the epoch over.
    #[inline(always)]
    pub fn epoch_rollover(items: u64, epochs_completed: u64) {
        tls::emit(EventKind::EpochRollover, items, epochs_completed);
    }

    /// A candidate election replaced the minimum entry.
    #[inline(always)]
    pub fn election_win(est: i64, min_qw: i64) {
        tls::emit(EventKind::ElectionWin, est as u64, min_qw as u64);
    }

    /// A candidate election kept the incumbent.
    #[inline(always)]
    pub fn election_loss(est: i64, min_qw: i64) {
        tls::emit(EventKind::ElectionLoss, est as u64, min_qw as u64);
    }

    /// A candidate entry was evicted into the vague part.
    #[inline(always)]
    pub fn eviction(fp: u16, qw: i64) {
        tls::emit(EventKind::Eviction, u64::from(fp), qw as u64);
    }

    /// A report fired from the candidate part's exact Qweight.
    #[inline(always)]
    pub fn report_candidate(qw: i64) {
        tls::emit(EventKind::Report, qw as u64, 0);
    }

    /// A report fired from the vague part's estimate.
    #[inline(always)]
    pub fn report_vague(qw: i64) {
        tls::emit(EventKind::Report, qw as u64, 1);
    }
}

#[cfg(not(feature = "trace"))]
mod hooks {
    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn epoch_rollover(_items: u64, _epochs_completed: u64) {}

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn election_win(_est: i64, _min_qw: i64) {}

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn election_loss(_est: i64, _min_qw: i64) {}

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn eviction(_fp: u16, _qw: i64) {}

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn report_candidate(_qw: i64) {}

    /// No-op: tracing is compiled out.
    #[inline(always)]
    pub fn report_vague(_qw: i64) {}
}

pub(crate) use hooks::*;
