//! The vague part: a [`WeightSketch`] addressed by *(fingerprint, bucket)*
//! composite keys.
//!
//! Technique 1 of §III-D: the candidate part stores only fingerprints, so
//! when an evicted entry must be pushed back into the vague part, the
//! original key is gone. The fix is to hash the vague part on
//! `fp + h_b(x)` instead of on `x` — i.e. on a composite of the fingerprint
//! and the bucket index, both of which are always available. As long as
//! `m · 2^16` (buckets × fingerprint space) is much larger than the number
//! of sketch counters, no visible accuracy is lost.

use qf_hash::RowLanes;
use qf_sketch::WeightSketch;

/// The composite vague-part key: bucket index in the high bits, 16-bit
/// fingerprint in the low bits. This is the only key type the vague part
/// ever sees, so candidate evictions can re-insert without the raw key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VagueKey(pub u64);

impl VagueKey {
    /// Combine a candidate bucket index and fingerprint.
    #[inline(always)]
    pub fn new(bucket: usize, fp: u16) -> Self {
        Self(((bucket as u64) << 16) | u64::from(fp))
    }

    /// The bucket component.
    #[inline(always)]
    pub fn bucket(self) -> usize {
        (self.0 >> 16) as usize
    }

    /// The fingerprint component.
    #[inline(always)]
    pub fn fingerprint(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }
}

impl qf_hash::StreamKey for VagueKey {
    #[inline(always)]
    fn hash_with_seed(&self, seed: u64) -> u64 {
        self.0.hash_with_seed(seed)
    }

    #[inline(always)]
    fn prehash(&self) -> Option<u64> {
        // Delegates to the inner u64, so the prehash invariant
        // (`hash_with_seed(s) == mix64(s ^ prehash)`) holds by construction
        // and each sketch row costs one mix round instead of two.
        self.0.prehash()
    }
}

/// Thin wrapper adding the composite-key discipline over any
/// [`WeightSketch`].
#[derive(Debug, Clone)]
pub struct VaguePart<S: WeightSketch> {
    sketch: S,
}

impl<S: WeightSketch> VaguePart<S> {
    /// Wrap a sketch.
    pub fn new(sketch: S) -> Self {
        Self { sketch }
    }

    /// Add `delta` under the composite key.
    #[inline(always)]
    pub fn add(&mut self, key: VagueKey, delta: i64) {
        crate::telemetry::vague_add();
        self.sketch.add(&key, delta);
    }

    /// Estimate the composite key's Qweight.
    #[inline(always)]
    pub fn estimate(&self, key: VagueKey) -> i64 {
        self.sketch.estimate(&key)
    }

    /// Remove (and return) the key's estimate — the post-report reset and
    /// the "remove from vague part" half of the candidate exchange.
    #[inline(always)]
    pub fn remove_estimate(&mut self, key: VagueKey) -> i64 {
        crate::telemetry::vague_remove();
        self.sketch.remove_estimate(&key)
    }

    /// Precompute the composite key's per-row lanes so the one-pass entry
    /// points below touch each counter row with zero extra hashing.
    #[inline(always)]
    pub fn prepare_lanes(&self, key: VagueKey) -> RowLanes {
        self.sketch.prepare_lanes(&key)
    }

    /// Batch form of [`Self::prepare_lanes`]: capture lanes for a whole
    /// chunk of composite keys in item order (bit-identical to per-key
    /// calls; the sketch restructures the fill row-major).
    #[inline(always)]
    pub fn fill_lanes(&self, keys: &[VagueKey], out: &mut [RowLanes]) {
        self.sketch.fill_lanes(keys, out);
    }

    /// Hint-prefetch the counter cells addressed by `lanes` — used by
    /// chunked ingest ahead of the lane-taking entry points. Pure hint.
    #[inline(always)]
    pub fn prefetch_lanes(&self, lanes: &RowLanes) {
        self.sketch.prefetch_lanes(lanes);
    }

    /// Add `delta` and return the post-add estimate in one pass over the
    /// sketch rows (equivalent to [`Self::add`] then [`Self::estimate`]).
    #[inline(always)]
    pub fn add_and_estimate(&mut self, key: VagueKey, lanes: &RowLanes, delta: i64) -> i64 {
        crate::telemetry::vague_add();
        self.sketch.add_and_estimate(&key, lanes, delta)
    }

    /// Remove the estimate the caller already holds (from
    /// [`Self::add_and_estimate`]) without re-deriving it.
    #[inline(always)]
    pub fn fetch_remove(&mut self, key: VagueKey, lanes: &RowLanes, estimate: i64) -> i64 {
        crate::telemetry::vague_remove();
        self.sketch.fetch_remove(&key, lanes, estimate)
    }

    /// Clear all counters.
    pub fn clear(&mut self) {
        self.sketch.clear();
    }

    /// Counter storage bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes()
    }

    /// Underlying sketch kind ("CS" / "CMS").
    pub fn kind_name(&self) -> &'static str {
        self.sketch.kind_name()
    }

    /// Borrow the inner sketch (diagnostics).
    pub fn inner(&self) -> &S {
        &self.sketch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_sketch::CountSketch;

    #[test]
    fn composite_key_roundtrip() {
        let k = VagueKey::new(1234, 0xBEEF);
        assert_eq!(k.bucket(), 1234);
        assert_eq!(k.fingerprint(), 0xBEEF);
    }

    #[test]
    fn distinct_components_distinct_keys() {
        assert_ne!(VagueKey::new(1, 2), VagueKey::new(2, 1));
        assert_ne!(VagueKey::new(0, 2), VagueKey::new(2, 0));
    }

    #[test]
    fn vague_key_prehash_upholds_streamkey_identity() {
        use qf_hash::StreamKey;
        let k = VagueKey::new(321, 0xCAFE);
        let p = k.prehash().expect("composite key is fixed-width");
        assert_eq!(p, k.0.prehash().expect("u64 is fixed-width"));
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            assert_eq!(k.hash_with_seed(seed), qf_hash::mix64(seed ^ p));
        }
    }

    #[test]
    fn fill_lanes_matches_per_key_lanes() {
        let v = VaguePart::new(CountSketch::<i64>::new(3, 512, 9));
        let keys: Vec<VagueKey> = (0..37).map(|i| VagueKey::new(i, (i * 7) as u16)).collect();
        let mut got = vec![RowLanes::empty(); keys.len()];
        v.fill_lanes(&keys, &mut got);
        for (k, lanes) in keys.iter().zip(&got) {
            assert_eq!(*lanes, v.prepare_lanes(*k));
            v.prefetch_lanes(lanes); // pure hint: must be callable on any lanes
        }
    }

    #[test]
    fn add_estimate_remove_cycle() {
        let mut v = VaguePart::new(CountSketch::<i64>::new(3, 512, 5));
        let k = VagueKey::new(7, 0x1234);
        v.add(k, 25);
        v.add(k, -5);
        assert_eq!(v.estimate(k), 20);
        assert_eq!(v.remove_estimate(k), 20);
        assert_eq!(v.estimate(k), 0);
    }

    #[test]
    fn eviction_reinsert_preserves_mass() {
        // Simulate the exchange: key held in candidate with qw=9 gets
        // evicted into the vague part, then later promoted back out.
        let mut v = VaguePart::new(CountSketch::<i64>::new(3, 1024, 6));
        let k = VagueKey::new(3, 0xAAAA);
        v.add(k, 9); // eviction pushes the stored Qweight in
        assert_eq!(v.estimate(k), 9);
        let back = v.remove_estimate(k); // promotion pulls it back out
        assert_eq!(back, 9);
        assert_eq!(v.estimate(k), 0);
    }

    #[test]
    fn clear_and_memory_delegate() {
        let mut v = VaguePart::new(CountSketch::<i16>::new(2, 128, 7));
        v.add(VagueKey::new(0, 1), 3);
        assert_eq!(v.memory_bytes(), 2 * 128 * 2);
        assert_eq!(v.kind_name(), "CS");
        v.clear();
        assert_eq!(v.estimate(VagueKey::new(0, 1)), 0);
    }
}
