//! Exact Qweight arithmetic and the quantile⇔Qweight equivalence theorem.
//!
//! These functions are the *specification* against which the sketch-based
//! structures are tested: [`exact_qweight`] computes the true running
//! Qweight of a value multiset and [`quantile_exceeds`] evaluates
//! Definition 3/4 directly on the sorted values. §III-A proves
//!
//! ```text
//! q_{ε,δ}(x) > T   ⇔   Qw(x) ≥ ε/(1−δ)
//! ```
//!
//! and `tests::prop_equivalence_theorem` verifies that equivalence on
//! arbitrary inputs.

use crate::criteria::Criteria;

/// The exact Qweight of a value multiset under a criterion:
/// `Σ_{v≤T} −1 + Σ_{v>T} δ/(1−δ)`.
pub fn exact_qweight(values: &[f64], criteria: &Criteria) -> f64 {
    let above = values.iter().filter(|&&v| v > criteria.threshold()).count() as f64;
    let below = values.len() as f64 - above;
    above * criteria.weight_above() - below
}

/// Evaluate `q_{ε,δ} > T` exactly (Definition 3): sort the values, take the
/// item at index `⌊δ·n − ε⌋` (or `−∞` if negative) and compare with `T`.
pub fn quantile_exceeds(values: &[f64], criteria: &Criteria) -> bool {
    let n = values.len();
    if n == 0 {
        return false;
    }
    let idx = (criteria.delta() * n as f64 - criteria.epsilon()).floor();
    if idx < 0.0 {
        return false; // q = −∞ never exceeds a finite T
    }
    let idx = (idx as usize).min(n - 1);
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    sorted[idx] > criteria.threshold()
}

/// Incremental exact Qweight tracker for one key — the reference the
/// sketches approximate, and the engine inside the exact detector.
///
/// Only two counters are needed, because the Qweight and the
/// `(ε,δ)`-quantile test both depend solely on `(n, n_above)`:
/// `q_{ε,δ} > T ⇔ n_above ≥ n − ⌊δ·n − ε⌋` (at least that many items must
/// exceed `T` for the index-`⌊δn−ε⌋` item to exceed it).
#[derive(Debug, Clone, Copy, Default)]
pub struct QweightTracker {
    /// Total items since the last reset.
    pub n: u64,
    /// Items with value strictly above `T` since the last reset.
    pub n_above: u64,
}

impl QweightTracker {
    /// Fresh tracker (empty value set).
    pub fn new() -> Self {
        Self::default()
    }

    /// Account one value; returns the updated exact Qweight.
    #[inline]
    pub fn observe(&mut self, value: f64, criteria: &Criteria) -> f64 {
        self.n += 1;
        if value > criteria.threshold() {
            self.n_above += 1;
        }
        self.qweight(criteria)
    }

    /// Current exact Qweight.
    #[inline]
    pub fn qweight(&self, criteria: &Criteria) -> f64 {
        let above = self.n_above as f64;
        let below = (self.n - self.n_above) as f64;
        above * criteria.weight_above() - below
    }

    /// Exact Definition-3 test using only the two counters.
    #[inline]
    pub fn quantile_exceeds(&self, criteria: &Criteria) -> bool {
        if self.n == 0 {
            return false;
        }
        let idx = (criteria.delta() * self.n as f64 - criteria.epsilon()).floor();
        if idx < 0.0 {
            return false;
        }
        let idx = (idx as u64).min(self.n - 1);
        // The sorted multiset has (n − n_above) items ≤ T first; index idx
        // exceeds T iff idx ≥ n − n_above.
        idx >= self.n - self.n_above
    }

    /// Reset after a report (Definition 4: "Reset V_x").
    #[inline]
    pub fn reset(&mut self) {
        self.n = 0;
        self.n_above = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit(e: f64, d: f64, t: f64) -> Criteria {
        Criteria::new(e, d, t).unwrap()
    }

    #[test]
    fn figure1_example() {
        // δ = 0.5, T = 3, values {1, 5, 9}: quantile is 5 > 3 ⇒ report.
        let c = crit(0.0, 0.5, 3.0);
        let vals = [1.0, 5.0, 9.0];
        assert!(quantile_exceeds(&vals, &c));
        // Qweight = 2·(+1) + 1·(−1) = 1 ≥ 0 = ε/(1−δ).
        assert_eq!(exact_qweight(&vals, &c), 1.0);
        // User B {1, 1} is not reported.
        assert!(!quantile_exceeds(&[1.0, 1.0], &c));
    }

    #[test]
    fn noise_example_all_three_neighborhoods() {
        let c = crit(1.0, 0.8, 70.0);
        let a = [65.0, 67.0, 72.0, 69.0, 74.0, 66.0, 68.0, 75.0];
        let b = [60.0, 62.0, 64.0, 61.0, 63.0, 75.0, 80.0, 62.0];
        let cc = [55.0, 57.0, 59.0, 58.0, 76.0, 57.0, 56.0, 55.0];
        assert!(quantile_exceeds(&a, &c), "neighborhood A reported");
        assert!(!quantile_exceeds(&b, &c), "neighborhood B not reported");
        assert!(!quantile_exceeds(&cc, &c), "neighborhood C not reported");
    }

    #[test]
    fn equivalence_on_figure1() {
        let c = crit(0.0, 0.5, 3.0);
        let vals = [1.0, 5.0, 9.0];
        assert_eq!(
            quantile_exceeds(&vals, &c),
            exact_qweight(&vals, &c) >= c.report_threshold()
        );
    }

    #[test]
    fn tracker_matches_batch_functions() {
        let c = crit(2.0, 0.9, 10.0);
        let mut t = QweightTracker::new();
        let mut vals = vec![];
        for i in 0..200 {
            let v = if i % 7 == 0 { 20.0 } else { 5.0 };
            t.observe(v, &c);
            vals.push(v);
            assert!(
                (t.qweight(&c) - exact_qweight(&vals, &c)).abs() < 1e-9,
                "qweight divergence at {i}"
            );
            assert_eq!(
                t.quantile_exceeds(&c),
                quantile_exceeds(&vals, &c),
                "test divergence at {i}"
            );
        }
    }

    #[test]
    fn premature_report_avoided_by_epsilon() {
        // One huge first value: ε = 0 reports instantly, ε = 1 waits.
        let strict = crit(0.0, 0.95, 100.0);
        let lax = crit(1.0, 0.95, 100.0);
        let vals = [500.0];
        assert!(quantile_exceeds(&vals, &strict));
        assert!(!quantile_exceeds(&vals, &lax));
    }

    #[test]
    fn reset_clears_history() {
        let c = crit(0.0, 0.5, 10.0);
        let mut t = QweightTracker::new();
        for _ in 0..10 {
            t.observe(50.0, &c);
        }
        assert!(t.quantile_exceeds(&c));
        t.reset();
        assert!(!t.quantile_exceeds(&c));
        assert_eq!(t.n, 0);
    }

    #[test]
    fn empty_never_exceeds() {
        let c = crit(0.0, 0.5, 0.0);
        assert!(!quantile_exceeds(&[], &c));
        assert_eq!(exact_qweight(&[], &c), 0.0);
    }

    proptest::proptest! {
        /// The central §III-A theorem: for every value multiset and every
        /// (ε, δ, T), `q_{ε,δ} > T ⇔ Qw ≥ ε/(1−δ)`.
        #[test]
        fn prop_equivalence_theorem(
            values in proptest::collection::vec(-100.0f64..100.0, 0..200),
            delta in 0.05f64..0.99,
            epsilon in 0.0f64..20.0,
            threshold in -50.0f64..50.0,
        ) {
            let c = crit(epsilon, delta, threshold);
            let qw = exact_qweight(&values, &c);
            let thr = c.report_threshold();
            // Skip knife-edge cases where float rounding of δ/(1−δ) could
            // legitimately land Qw on either side of the threshold; the
            // theorem holds in exact arithmetic.
            if (qw - thr).abs() > 1e-6 * (1.0 + thr.abs()) {
                let lhs = quantile_exceeds(&values, &c);
                let rhs = qw >= thr;
                proptest::prop_assert_eq!(lhs, rhs,
                    "values.len()={} delta={} eps={} T={} qw={} thr={}",
                    values.len(), delta, epsilon, threshold, qw, thr);
            }
        }

        /// The tracker's two-counter shortcut agrees with the sort-based
        /// definition on arbitrary inputs.
        #[test]
        fn prop_tracker_counters_equal_definition(
            values in proptest::collection::vec(-100.0f64..100.0, 1..150),
            delta in 0.05f64..0.99,
            epsilon in 0.0f64..10.0,
        ) {
            let c = crit(epsilon, delta, 0.0);
            let mut t = QweightTracker::new();
            for &v in &values {
                t.observe(v, &c);
            }
            proptest::prop_assert_eq!(t.quantile_exceeds(&c), quantile_exceeds(&values, &c));
        }
    }
}
