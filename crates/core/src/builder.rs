//! Builder for [`QuantileFilter`] with the paper's default parameters and
//! memory budgeting.
//!
//! Defaults follow §V-A: `b = 6` entries per candidate bucket, `d = 3`
//! vague-part rows, candidate:vague space split 4:1, Count-sketch vague
//! part with 32-bit counters.

use crate::candidate::{CandidatePart, ENTRY_BYTES};
use crate::criteria::Criteria;
use crate::error::BuilderError;
use crate::filter::QuantileFilter;
use crate::strategy::ElectionStrategy;
use qf_sketch::count_sketch::MAX_DEPTH;
use qf_sketch::{CountSketch, SketchCounter, WeightSketch};

/// Fraction of a memory budget given to the candidate part by default
/// (the paper's 4:1 candidate:vague split — "the vague approximately
/// occupies 20% of the total space, and the candidate about 80%").
pub const DEFAULT_CANDIDATE_FRACTION: f64 = 0.8;

/// Default entries per bucket (Fig. 9(b)/10(b) pick 6).
pub const DEFAULT_BUCKET_LEN: usize = 6;

/// Default vague-part depth (Fig. 9(a)/10(a) pick 3).
pub const DEFAULT_VAGUE_DEPTH: usize = 3;

// The default vague counter width is 8 bits (§III-B Technical Details:
// sign cancellation keeps collision mass small, "consequently, we can
// adopt 16-bit or even 8-bit counters"). Narrow saturating counters are
// also what keeps precision high: a clamped estimate cannot spuriously
// cross a large report threshold, so reports above ±127 Qweight can only
// come from the exactly-tracked candidate part.

/// Configuration-by-steps constructor for [`QuantileFilter`].
#[derive(Debug, Clone)]
pub struct QuantileFilterBuilder {
    criteria: Criteria,
    strategy: ElectionStrategy,
    seed: u64,
    bucket_len: usize,
    vague_depth: usize,
    candidate_fraction: f64,
    memory_budget: Option<usize>,
    explicit_buckets: Option<usize>,
    explicit_vague: Option<(usize, usize)>,
}

impl QuantileFilterBuilder {
    /// Start a builder with the filter-wide default criteria.
    pub fn new(criteria: Criteria) -> Self {
        Self {
            criteria,
            strategy: ElectionStrategy::default(),
            seed: 0x51F1_7E2D,
            bucket_len: DEFAULT_BUCKET_LEN,
            vague_depth: DEFAULT_VAGUE_DEPTH,
            candidate_fraction: DEFAULT_CANDIDATE_FRACTION,
            memory_budget: None,
            explicit_buckets: None,
            explicit_vague: None,
        }
    }

    /// Set the election strategy (default: comparative).
    pub fn strategy(mut self, strategy: ElectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Set the deterministic seed for all hashing and stochastic rounding.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Entries per candidate bucket (`b`, the block length).
    ///
    /// # Panics
    /// Panics at [`Self::build`] if zero.
    pub fn bucket_len(mut self, b: usize) -> Self {
        self.bucket_len = b;
        self
    }

    /// Vague-part depth (`d`, the array number).
    pub fn vague_depth(mut self, d: usize) -> Self {
        self.vague_depth = d;
        self
    }

    /// Total memory budget in bytes, split `candidate_fraction` /
    /// `1 − candidate_fraction` between the parts.
    pub fn memory_budget_bytes(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Fraction of the budget for the candidate part (default 0.8;
    /// Fig. 11's memory-proportion sweep varies this).
    ///
    /// # Panics
    /// Panics at [`Self::build`] unless in `(0, 1)`.
    pub fn candidate_fraction(mut self, f: f64) -> Self {
        self.candidate_fraction = f;
        self
    }

    /// Explicit candidate bucket count (overrides the budget split).
    pub fn candidate_buckets(mut self, m: usize) -> Self {
        self.explicit_buckets = Some(m);
        self
    }

    /// Explicit vague dimensions `(d, w)` (overrides the budget split).
    pub fn vague_dims(mut self, d: usize, w: usize) -> Self {
        self.explicit_vague = Some((d, w));
        self
    }

    fn build_candidate(&self) -> Result<CandidatePart, BuilderError> {
        if let Some(m) = self.explicit_buckets {
            if m == 0 {
                return Err(BuilderError::ZeroCandidateBuckets);
            }
            return CandidatePart::try_new(m, self.bucket_len, self.seed)
                .ok_or(BuilderError::ZeroBucketLen);
        }
        let budget = self
            .memory_budget
            .ok_or(BuilderError::MissingCandidateSizing)?;
        let bytes = (budget as f64 * self.candidate_fraction) as usize;
        CandidatePart::try_with_memory_budget(self.bucket_len, bytes.max(ENTRY_BYTES), self.seed)
            .ok_or(BuilderError::ZeroBucketLen)
    }

    fn vague_budget(&self) -> Result<usize, BuilderError> {
        let budget = self.memory_budget.ok_or(BuilderError::MissingVagueSizing)?;
        Ok(((budget as f64 * (1.0 - self.candidate_fraction)) as usize).max(4))
    }

    /// Fallible build with a Count-sketch vague part of counter type `C`.
    pub fn try_build_with_counter<C: SketchCounter>(
        self,
    ) -> Result<QuantileFilter<CountSketch<C>>, BuilderError> {
        self.validate()?;
        let candidate = self.build_candidate()?;
        // The dimensions are validated above, so the (documented panicking)
        // sketch constructors below cannot actually panic.
        let sketch = if let Some((d, w)) = self.explicit_vague {
            CountSketch::<C>::new(d, w, self.seed ^ 0x7A63_5E11)
        } else {
            CountSketch::<C>::with_memory_budget(
                self.vague_depth,
                self.vague_budget()?,
                self.seed ^ 0x7A63_5E11,
            )
        };
        Ok(QuantileFilter::from_parts(
            self.criteria,
            candidate,
            sketch,
            self.strategy,
            self.seed,
        ))
    }

    /// Fallible build with the default `CountSketch<i8>` vague part.
    pub fn try_build(self) -> Result<QuantileFilter<CountSketch<i8>>, BuilderError> {
        self.try_build_with_counter::<i8>()
    }

    /// Fallible build with a caller-supplied vague sketch (e.g. a
    /// [`qf_sketch::CountMinSketch`] for the Fig. 12 ablation). The
    /// candidate part still follows the builder's settings.
    pub fn try_build_with_sketch<S: WeightSketch>(
        self,
        sketch: S,
    ) -> Result<QuantileFilter<S>, BuilderError> {
        self.validate()?;
        let candidate = self.build_candidate()?;
        Ok(QuantileFilter::from_parts(
            self.criteria,
            candidate,
            sketch,
            self.strategy,
            self.seed,
        ))
    }

    /// Build with a Count-sketch vague part of counter type `C`.
    ///
    /// # Panics
    /// Panics on any configuration error [`Self::try_build_with_counter`]
    /// would report.
    pub fn build_with_counter<C: SketchCounter>(self) -> QuantileFilter<CountSketch<C>> {
        match self.try_build_with_counter::<C>() {
            Ok(filter) => filter,
            Err(e) => panic!("{e}"),
        }
    }

    /// Build with the default `CountSketch<i8>` vague part.
    ///
    /// # Panics
    /// Panics on any configuration error [`Self::try_build`] would report.
    pub fn build(self) -> QuantileFilter<CountSketch<i8>> {
        self.build_with_counter::<i8>()
    }

    /// Build with a caller-supplied vague sketch.
    ///
    /// # Panics
    /// Panics on any configuration error [`Self::try_build_with_sketch`]
    /// would report.
    pub fn build_with_sketch<S: WeightSketch>(self, sketch: S) -> QuantileFilter<S> {
        match self.try_build_with_sketch(sketch) {
            Ok(filter) => filter,
            Err(e) => panic!("{e}"),
        }
    }

    fn validate(&self) -> Result<(), BuilderError> {
        if self.bucket_len == 0 {
            return Err(BuilderError::ZeroBucketLen);
        }
        if self.vague_depth == 0 || self.vague_depth > MAX_DEPTH {
            return Err(BuilderError::BadVagueDepth);
        }
        if let Some((d, w)) = self.explicit_vague {
            if d == 0 || d > MAX_DEPTH || w == 0 {
                return Err(BuilderError::BadVagueDims);
            }
        }
        if !(self.candidate_fraction > 0.0 && self.candidate_fraction < 1.0) {
            return Err(BuilderError::BadCandidateFraction);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn budget_split_matches_fraction() {
        let qf = QuantileFilterBuilder::new(crit())
            .memory_budget_bytes(100_000)
            .seed(1)
            .build();
        let cand = qf.candidate_part().memory_bytes();
        let vague = qf.vague_part().memory_bytes();
        let total = (cand + vague) as f64;
        assert!(total <= 100_000.0);
        let frac = cand as f64 / total;
        assert!((frac - 0.8).abs() < 0.05, "candidate fraction {frac}");
    }

    #[test]
    fn defaults_match_paper() {
        let qf = QuantileFilterBuilder::new(crit())
            .memory_budget_bytes(10_000)
            .build();
        assert_eq!(qf.candidate_part().bucket_len(), 6);
        // d = 3 rows of i8 counters → vague bytes = 3 * w.
        assert_eq!(qf.vague_part().memory_bytes() % 3, 0);
    }

    #[test]
    fn explicit_dims_override_budget() {
        let qf = QuantileFilterBuilder::new(crit())
            .candidate_buckets(10)
            .bucket_len(4)
            .vague_dims(2, 64)
            .build();
        assert_eq!(qf.candidate_part().buckets(), 10);
        assert_eq!(qf.candidate_part().bucket_len(), 4);
        assert_eq!(qf.vague_part().memory_bytes(), 2 * 64);
    }

    #[test]
    fn counter_width_choice() {
        let qf = QuantileFilterBuilder::new(crit())
            .candidate_buckets(4)
            .vague_dims(3, 100)
            .build_with_counter::<i8>();
        assert_eq!(qf.vague_part().memory_bytes(), 3 * 100);
    }

    #[test]
    #[should_panic(expected = "memory_budget_bytes")]
    fn missing_budget_panics() {
        let _ = QuantileFilterBuilder::new(crit()).build();
    }

    #[test]
    #[should_panic(expected = "candidate_fraction")]
    fn bad_fraction_panics() {
        let _ = QuantileFilterBuilder::new(crit())
            .memory_budget_bytes(1000)
            .candidate_fraction(1.5)
            .build();
    }
}
