//! Algorithm 1: Qweight estimation with one Count sketch — the
//! vague-part-only QuantileFilter, without candidate election.
//!
//! This intermediate design already collapses the naive solution's three
//! sketch operations per item into one structure, but every key's Qweight
//! is exposed to collision noise. Theorem 1 bounds its error by
//! `ε·L₂` where `L₂ = √(Σ Qᵢ²)`; the candidate part exists to shrink that
//! `L₂` by removing the top keys (Theorems 2–3). Keeping this variant
//! around lets tests and benches measure exactly what the election buys.

use crate::criteria::Criteria;
use qf_hash::StreamKey;
use qf_sketch::{CountSketch, SketchCounter, StochasticRounder, WeightSketch};

/// The single-sketch Qweight estimator of Algorithm 1.
#[derive(Debug, Clone)]
pub struct QweightSketch<C: SketchCounter = i32> {
    sketch: CountSketch<C>,
    criteria: Criteria,
    rounder: StochasticRounder,
}

impl<C: SketchCounter> QweightSketch<C> {
    /// Build with explicit dimensions.
    pub fn new(criteria: Criteria, rows: usize, width: usize, seed: u64) -> Self {
        Self {
            sketch: CountSketch::new(rows, width, seed),
            criteria,
            rounder: StochasticRounder::new(seed ^ 0x0A16_0001),
        }
    }

    /// Build within a byte budget.
    pub fn with_memory_budget(criteria: Criteria, rows: usize, bytes: usize, seed: u64) -> Self {
        Self {
            sketch: CountSketch::with_memory_budget(rows, bytes, seed),
            criteria,
            rounder: StochasticRounder::new(seed ^ 0x0A16_0001),
        }
    }

    /// The criteria in force.
    pub fn criteria(&self) -> Criteria {
        self.criteria
    }

    /// Insert one item (Algorithm 1 lines 3–7); returns the estimated
    /// Qweight when the key is reported.
    pub fn insert<K: StreamKey + ?Sized>(&mut self, key: &K, value: f64) -> Option<i64> {
        let qw = self.rounder.round(self.criteria.item_weight(value));
        self.sketch.add(key, qw);
        let est = self.sketch.estimate(key);
        if est as f64 + 1e-9 >= self.criteria.report_threshold() {
            self.sketch.remove_estimate(key);
            return Some(est);
        }
        None
    }

    /// Point-query the estimated Qweight.
    pub fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> i64 {
        self.sketch.estimate(key)
    }

    /// Clear the sketch.
    pub fn reset(&mut self) {
        self.sketch.clear();
    }

    /// Counter bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sketch.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn reports_hot_key_at_threshold_crossing() {
        let mut a = QweightSketch::<i64>::new(crit(), 3, 1024, 1);
        let mut first = None;
        for i in 1..=10 {
            if a.insert(&1u64, 500.0).is_some() && first.is_none() {
                first = Some(i);
            }
        }
        // +9 per item crosses 50 at item 6.
        assert_eq!(first, Some(6));
    }

    #[test]
    fn deletion_resets_qweight() {
        let mut a = QweightSketch::<i64>::new(crit(), 3, 1024, 2);
        for _ in 0..6 {
            a.insert(&2u64, 500.0);
        }
        assert_eq!(a.estimate(&2u64), 0, "post-report Qweight must be 0");
    }

    #[test]
    fn cold_keys_never_report() {
        let mut a = QweightSketch::<i64>::new(crit(), 3, 2048, 3);
        for k in 0u64..500 {
            assert!(a.insert(&k, 5.0).is_none());
        }
    }

    #[test]
    fn fractional_delta_unbiased_reporting() {
        // δ = 0.85 ⇒ weight 17/3 ≈ 5.667 (stochastic rounding path);
        // threshold = 3/0.15 = 20. Expected crossing after ~4 items.
        let c = Criteria::new(3.0, 0.85, 100.0).unwrap();
        let mut a = QweightSketch::<i64>::new(c, 3, 1024, 4);
        let mut first = None;
        for i in 1..=20 {
            if a.insert(&7u64, 500.0).is_some() {
                first = Some(i);
                break;
            }
        }
        let first = first.expect("must eventually report");
        assert!((4..=6).contains(&first), "crossed at item {first}");
    }

    #[test]
    fn memory_budget_respected() {
        let a = QweightSketch::<i16>::with_memory_budget(crit(), 3, 6000, 5);
        assert!(a.memory_bytes() <= 6000);
    }
}
