//! # QuantileFilter
//!
//! A from-scratch Rust reproduction of **"Online Detection of Outstanding
//! Quantiles with QuantileFilter"** (ICDE 2024): the first approximate
//! algorithm purpose-built for detecting *quantile-outstanding keys* — keys
//! whose `(ε, δ)`-quantile of recent values exceeds a threshold `T` — in
//! constant time per stream item.
//!
//! ## The two techniques
//!
//! 1. **Qweight** ([`criteria`], [`qweight`]): give each item weight `−1`
//!    if its value is `≤ T` and `+δ/(1−δ)` if `> T`. Then
//!    `q_{ε,δ}(x) > T ⇔ Qw(x) ≥ ε/(1−δ)`, turning a rank query into a
//!    running-sum threshold test.
//! 2. **Candidate election** ([`candidate`], [`filter`]): a compact array
//!    of `(fingerprint, Qweight)` buckets tracks the keys most likely to be
//!    reported exactly, while a Count sketch (the *vague part*,
//!    [`qf_sketch::CountSketch`]) absorbs everything else. Keys with large
//!    estimated Qweights are promoted into the candidate part by one of
//!    three election strategies ([`strategy`]).
//!
//! ## Quick start
//!
//! ```
//! use quantile_filter::{Criteria, QuantileFilter, QuantileFilterBuilder};
//!
//! // Report keys whose 95th-percentile value exceeds 200.0,
//! // with rank slack ε = 30 (the paper's defaults).
//! let criteria = Criteria::new(30.0, 0.95, 200.0).unwrap();
//! let mut qf: QuantileFilter = QuantileFilterBuilder::new(criteria)
//!     .memory_budget_bytes(64 * 1024)
//!     .seed(7)
//!     .build();
//!
//! let mut reported = false;
//! for i in 0..5000u64 {
//!     let key = i % 10;
//!     let value = if key == 3 { 500.0 } else { 50.0 };
//!     reported |= qf.insert(&key, value).is_some();
//! }
//! assert!(reported, "key 3 is outstanding and must be reported");
//! ```
//!
//! Also included: the naive dual-Csketch strawman of §II-D ([`naive`]), the
//! vague-only estimator of Algorithm 1 ([`algorithm1`]), the per-key /
//! multi-criteria support of §III-C ([`multi`]), and a crash-safe
//! versioned snapshot/restore layer ([`snapshot`]) with a typed,
//! panic-free error surface ([`error`]).

// The configuration, ingest, and snapshot paths must never panic: every
// failure is a typed `QfError`/`BuilderError`. The lint gate enforces the
// absence of unwrap/expect outside tests; the panicking convenience
// wrappers (`build()`, `new()`) use explicit `panic!` with the typed
// error's message and are documented as such.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod algorithm1;
pub mod builder;
pub mod candidate;
pub mod criteria;
pub mod epoch;
pub mod error;
pub mod filter;
pub mod invariants;
pub mod multi;
pub mod naive;
pub mod query;
pub mod qweight;
pub mod snapshot;
pub mod strategy;
pub mod stream;
pub(crate) mod telemetry;
pub(crate) mod trace;
pub mod vague;

pub use algorithm1::QweightSketch;
pub use builder::QuantileFilterBuilder;
pub use criteria::Criteria;
pub use epoch::EpochFilter;
pub use error::{BuilderError, QfError};
pub use filter::{QuantileFilter, Report, ReportSource};
pub use invariants::{CheckInvariants, InvariantViolation};
pub use multi::MultiCriteriaFilter;
pub use naive::NaiveDualCsketch;
pub use query::parse_query;
pub use snapshot::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use strategy::ElectionStrategy;
