//! The QuantileFilter (Algorithm 2): candidate part + vague part with
//! candidate election.

use crate::candidate::{CandidatePart, OfferOutcome};
use crate::criteria::Criteria;
use crate::error::QfError;
use crate::strategy::ElectionStrategy;
use crate::vague::{VagueKey, VaguePart};
use qf_hash::{HashedKey, RowLanes, SplitMix64, StreamKey};
use qf_sketch::{CountSketch, StochasticRounder, WeightSketch};

/// Items per chunk of the columnized [`QuantileFilter::insert_batch`]
/// pipeline. Sized so the chunk's coordinate/delta arrays live in a few
/// hundred stack bytes and its prefetched bucket lines all fit in L1.
pub const INGEST_CHUNK: usize = 64;

/// Which part of the structure produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportSource {
    /// The key's fingerprint was tracked exactly in the candidate part.
    Candidate,
    /// The key was estimated by the vague part's sketch.
    Vague,
}

/// A report that the just-inserted key is quantile-outstanding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Report {
    /// Where the decisive Qweight lived.
    pub source: ReportSource,
    /// The (estimated) Qweight that crossed `ε/(1−δ)`. The structure's
    /// Qweight for the key has been reset to zero (Definition 4).
    pub estimated_qweight: i64,
}

/// Running operation statistics, used by the throughput/hit-rate analysis
/// of §V-C ("initially querying the candidate part followed by the vague
/// part, enhancing the hit rate of the candidate part").
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterStats {
    /// Items answered entirely inside the candidate part.
    pub candidate_hits: u64,
    /// Items that created a fresh candidate entry.
    pub candidate_inserts: u64,
    /// Items that had to touch the vague part.
    pub vague_visits: u64,
    /// Candidate⇄vague exchanges performed.
    pub exchanges: u64,
    /// Reports emitted.
    pub reports: u64,
}

impl FilterStats {
    /// Fraction of items that never left the candidate part.
    pub fn candidate_hit_rate(&self) -> f64 {
        let total = self.candidate_hits + self.candidate_inserts + self.vague_visits;
        if total == 0 {
            return 0.0;
        }
        self.candidate_hits as f64 / total as f64
    }
}

/// The QuantileFilter of Algorithm 2, generic over the vague-part sketch
/// (`CS` by default; `CMS` for the Fig. 12 ablation).
#[derive(Debug, Clone)]
pub struct QuantileFilter<S: WeightSketch = CountSketch<i8>> {
    criteria: Criteria,
    candidate: CandidatePart,
    vague: VaguePart<S>,
    strategy: ElectionStrategy,
    rounder: StochasticRounder,
    rng: SplitMix64,
    stats: FilterStats,
    // Derived from `criteria` whenever it is (re)set, so the default-
    // criteria ingest paths never re-divide per item. Not serialized:
    // snapshots restore `criteria` and recompute.
    report_at: f64,
    weight_above: f64,
}

impl<S: WeightSketch> QuantileFilter<S> {
    /// Assemble a filter from its parts. Most callers should use
    /// [`crate::QuantileFilterBuilder`] instead.
    pub fn from_parts(
        criteria: Criteria,
        candidate: CandidatePart,
        vague_sketch: S,
        strategy: ElectionStrategy,
        seed: u64,
    ) -> Self {
        Self {
            criteria,
            candidate,
            vague: VaguePart::new(vague_sketch),
            strategy,
            rounder: StochasticRounder::new(seed ^ 0x5EED_0001),
            rng: SplitMix64::new(seed ^ 0x5EED_0002),
            stats: FilterStats::default(),
            report_at: criteria.report_threshold(),
            weight_above: criteria.weight_above(),
        }
    }

    /// The filter-wide default criteria.
    pub fn default_criteria(&self) -> Criteria {
        self.criteria
    }

    /// Replace the filter-wide default criteria. Existing Qweights are kept
    /// (§III-C recommends deleting affected keys first; see
    /// [`Self::delete`]).
    pub fn set_default_criteria(&mut self, criteria: Criteria) {
        self.criteria = criteria;
        self.report_at = criteria.report_threshold();
        self.weight_above = criteria.weight_above();
    }

    /// Operation statistics since construction or the last [`Self::reset`].
    pub fn stats(&self) -> FilterStats {
        self.stats
    }

    /// The election strategy in use.
    pub fn strategy(&self) -> ElectionStrategy {
        self.strategy
    }

    /// Total charged memory (candidate entries + vague counters).
    pub fn memory_bytes(&self) -> usize {
        self.candidate.memory_bytes() + self.vague.memory_bytes()
    }

    /// Borrow the candidate part (diagnostics / tests).
    pub fn candidate_part(&self) -> &CandidatePart {
        &self.candidate
    }

    /// Borrow the vague part (diagnostics / tests).
    pub fn vague_part(&self) -> &VaguePart<S> {
        &self.vague
    }

    /// Does an integer Qweight meet the report threshold `ε/(1−δ)`? The
    /// threshold is computed once per insert (or once per batch) and passed
    /// in, so the division behind `report_threshold()` is off the per-check
    /// path.
    #[inline(always)]
    fn meets(report_at: f64, qw: i64) -> bool {
        qw as f64 + 1e-9 >= report_at
    }

    /// Insert an item under the filter-wide default criteria.
    ///
    /// Non-finite values (NaN, ±∞) are silently dropped — they carry no
    /// quantile information and would otherwise corrupt Qweight accounting
    /// (NaN compares below every `T` and would count −1; +∞ above every `T`
    /// and would count +δ/(1−δ)). Use [`Self::try_insert`] to surface the
    /// rejection as a typed error instead.
    #[inline]
    pub fn insert<K: StreamKey + ?Sized>(&mut self, key: &K, value: f64) -> Option<Report> {
        if !value.is_finite() {
            crate::telemetry::dropped_non_finite();
            return None;
        }
        let (threshold, report_at, weight_above) =
            (self.criteria.threshold(), self.report_at, self.weight_above);
        self.insert_finite(key, value, threshold, report_at, weight_above)
    }

    /// Insert an item under per-item criteria (§III-C first flexibility:
    /// "input the criteria ⟨ε_x, δ_x, T_x⟩ along with each item ⟨x, v⟩").
    ///
    /// Non-finite values are silently dropped, as in [`Self::insert`].
    pub fn insert_with_criteria<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        value: f64,
        criteria: &Criteria,
    ) -> Option<Report> {
        if !value.is_finite() {
            crate::telemetry::dropped_non_finite();
            return None;
        }
        self.insert_finite(
            key,
            value,
            criteria.threshold(),
            criteria.report_threshold(),
            criteria.weight_above(),
        )
    }

    /// Fallible insert under the filter-wide default criteria: rejects
    /// NaN/±∞ with [`QfError::NonFiniteValue`] instead of dropping them.
    #[inline]
    pub fn try_insert<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        value: f64,
    ) -> Result<Option<Report>, QfError> {
        if !value.is_finite() {
            crate::telemetry::rejected_non_finite();
            return Err(QfError::NonFiniteValue { value });
        }
        let (threshold, report_at, weight_above) =
            (self.criteria.threshold(), self.report_at, self.weight_above);
        Ok(self.insert_finite(key, value, threshold, report_at, weight_above))
    }

    /// Fallible insert under per-item criteria: rejects NaN/±∞ with
    /// [`QfError::NonFiniteValue`] instead of dropping them.
    pub fn try_insert_with_criteria<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        value: f64,
        criteria: &Criteria,
    ) -> Result<Option<Report>, QfError> {
        if !value.is_finite() {
            crate::telemetry::rejected_non_finite();
            return Err(QfError::NonFiniteValue { value });
        }
        Ok(self.insert_finite(
            key,
            value,
            criteria.threshold(),
            criteria.report_threshold(),
            criteria.weight_above(),
        ))
    }

    /// The shared finite-value ingest: callers pass the criteria already
    /// broken into its three hot constants (value threshold, report
    /// threshold, above-`T` weight) so the default-criteria paths read the
    /// cached derivations and never divide per item.
    fn insert_finite<K: StreamKey + ?Sized>(
        &mut self,
        key: &K,
        value: f64,
        value_threshold: f64,
        report_at: f64,
        weight_above: f64,
    ) -> Option<Report> {
        crate::telemetry::insert();
        let raw = if value > value_threshold {
            weight_above
        } else {
            -1.0
        };
        let delta = self.rounder.round(raw);
        let hk = self.candidate.coords_of(key);
        self.offer_hashed(hk, delta, report_at)
    }

    /// The one-pass core of Algorithm 2, operating on precomputed
    /// candidate coordinates. Every hash the insert needs is evaluated
    /// exactly once — `h_b`/`h_fp` arrive in `hk`, and the vague path
    /// captures its `d` row lanes once and reuses them for the fused
    /// add-estimate, the post-report reset, and the election's pull — and
    /// the candidate bucket is walked exactly once: `offer_or_min` carries
    /// the bucket's minimum entry out of the same scan that established
    /// bucket-full, so the election never rescans the slots.
    #[inline]
    fn offer_hashed(&mut self, hk: HashedKey, delta: i64, report_at: f64) -> Option<Report> {
        self.offer_hashed_with(hk, delta, report_at, None)
    }

    /// [`Self::offer_hashed`] with an optional precomputed set of vague-part
    /// row lanes for this item's composite key. The batch pipeline passes
    /// `Some` on vague-heavy streams, where it has already captured (and
    /// prefetched) the chunk's lanes in pass 1; lane capture is pure — no
    /// counter reads, no RNG — so precomputing it ahead of item order is
    /// bit-identical to computing it here. `None` (and the empty-lanes
    /// fallback) derives the lanes on the spot, exactly as the scalar path
    /// always has.
    fn offer_hashed_with(
        &mut self,
        hk: HashedKey,
        delta: i64,
        report_at: f64,
        vague_lanes: Option<&RowLanes>,
    ) -> Option<Report> {
        let HashedKey { bucket, fp } = hk;
        match self.candidate.offer_or_min(bucket, fp, delta) {
            OfferOutcome::Updated { qweight } => {
                self.stats.candidate_hits += 1;
                crate::telemetry::candidate_hit();
                if Self::meets(report_at, qweight) {
                    self.candidate.reset_entry(bucket, fp);
                    self.stats.reports += 1;
                    crate::telemetry::report_candidate();
                    crate::trace::report_candidate(qweight);
                    return Some(Report {
                        source: ReportSource::Candidate,
                        estimated_qweight: qweight,
                    });
                }
                None
            }
            OfferOutcome::Inserted => {
                self.stats.candidate_inserts += 1;
                crate::telemetry::candidate_insert();
                // A single item can already be outstanding when ε = 0 and
                // its weight crosses the (then zero-or-negative) threshold.
                if Self::meets(report_at, delta) {
                    self.candidate.reset_entry(bucket, fp);
                    self.stats.reports += 1;
                    crate::telemetry::report_candidate();
                    crate::trace::report_candidate(delta);
                    return Some(Report {
                        source: ReportSource::Candidate,
                        estimated_qweight: delta,
                    });
                }
                None
            }
            OfferOutcome::BucketFull { min_fp, min_qw } => {
                self.stats.vague_visits += 1;
                crate::telemetry::bucket_full();
                let vk = VagueKey::new(bucket, fp);
                let lanes = match vague_lanes {
                    Some(l) if !l.is_empty() => *l,
                    _ => self.vague.prepare_lanes(vk),
                };
                let est = self.vague.add_and_estimate(vk, &lanes, delta);
                if Self::meets(report_at, est) {
                    // Report and reset the key's Qweight in the vague part —
                    // removing exactly the estimate just acted on, not a
                    // recomputed one.
                    self.vague.fetch_remove(vk, &lanes, est);
                    self.stats.reports += 1;
                    crate::telemetry::report_vague();
                    crate::trace::report_vague(est);
                    return Some(Report {
                        source: ReportSource::Vague,
                        estimated_qweight: est,
                    });
                }
                // Candidate election (Algorithm 2 lines 14–17), against the
                // ⟨min_fp, min_qw⟩ entry the offer walk already found.
                if self.strategy.should_replace(est, min_qw, &mut self.rng) {
                    crate::telemetry::election();
                    crate::trace::election_win(est, min_qw);
                    // Evicted entry's Qweight moves into the vague part
                    // under its own composite key... The challenger's
                    // mass pulled out of the sketch is `est` itself —
                    // the same value the election just weighed, never a
                    // third query that could disagree with it.
                    let pulled = self.vague.fetch_remove(vk, &lanes, est);
                    self.vague.add(VagueKey::new(bucket, min_fp), min_qw);
                    // ...and the challenger enters the candidate part
                    // with the mass just pulled out of the sketch.
                    self.candidate.replace(bucket, min_fp, fp, pulled);
                    self.stats.exchanges += 1;
                    // The exchange is the one mutation that rewrites an
                    // entry in place — the natural audit point.
                    #[cfg(feature = "strict-invariants")]
                    self.assert_candidate_invariants();
                } else {
                    crate::trace::election_loss(est, min_qw);
                }
                None
            }
        }
    }

    /// Insert a batch of items under the filter-wide default criteria,
    /// invoking `sink(index, report)` for each item that fires a report.
    ///
    /// Behaviorally identical to calling [`Self::insert`] on each item in
    /// order — same reports, same statistics, same RNG consumption, bit for
    /// bit — but restructured into a chunked, column-wise pipeline: the
    /// batch is cut into [`INGEST_CHUNK`]-item chunks, and each chunk
    /// runs two dense passes. Pass 1 streams the chunk once, hashing every
    /// key's candidate coordinates (through the shared-prehash fast path),
    /// classifying each value against `T`, drawing the stochastic rounding
    /// for every item, and issuing a prefetch for every touched bucket line.
    /// Pass 2 applies the precomputed `⟨coords, Δ⟩` pairs through the same
    /// one-pass core the scalar path uses, hitting buckets that are already
    /// in cache.
    ///
    /// Why this is bit-identical: the rounder RNG and the election RNG are
    /// *separate* streams (`seed ^ 0x5EED_0001` vs `seed ^ 0x5EED_0002`).
    /// Pass 1 draws the roundings in item order — exactly the sequence the
    /// scalar path draws — and pass 2 makes the election draws in item
    /// order, so each stream individually sees the scalar sequence even
    /// though the two are no longer interleaved in time. The sketch/
    /// candidate mutations themselves cannot be batched across items (item
    /// `i`'s report-triggered removal must land before item `i+1`'s bump),
    /// which is why only the pure stages — hash, classify, round, prefetch —
    /// are columnized.
    ///
    /// Non-finite values are dropped exactly as [`Self::insert`] drops them.
    /// The sink is a callback (not a collection) so this path allocates
    /// nothing.
    pub fn insert_batch<K, F>(&mut self, items: &[(K, f64)], sink: &mut F)
    where
        K: StreamKey,
        F: FnMut(usize, Report),
    {
        let report_at = self.report_at;
        let weight_above = self.weight_above;
        let value_threshold = self.criteria.threshold();
        let mut coords = [HashedKey { bucket: 0, fp: 0 }; INGEST_CHUNK];
        let mut deltas = [0i64; INGEST_CHUNK];
        let mut live = [false; INGEST_CHUNK];
        let mut vlanes = [RowLanes::empty(); INGEST_CHUNK];
        let mut base = 0;
        for chunk in items.chunks(INGEST_CHUNK) {
            // Pass 1: hash + classify + round + prefetch, one memory stream
            // over the chunk. Rounder draws happen here, in item order.
            for (j, (key, value)) in chunk.iter().enumerate() {
                if value.is_finite() {
                    crate::telemetry::insert();
                    let hk = self.candidate.coords_of(key);
                    self.candidate.prefetch(hk.bucket);
                    let raw = if *value > value_threshold {
                        weight_above
                    } else {
                        -1.0
                    };
                    coords[j] = hk;
                    deltas[j] = self.rounder.round(raw);
                    live[j] = true;
                } else {
                    crate::telemetry::dropped_non_finite();
                    live[j] = false;
                }
            }
            // Pass 1½, taken only on vague-heavy streams (observed path
            // stats say most items will miss the candidate part): capture
            // the whole chunk's vague-part row lanes column-wise and
            // prefetch the sketch cells they address, so pass 2's
            // add-and-estimate lands on warm counter lines with zero
            // hashing left to do. Lane capture is pure — no counters read,
            // no RNG — so hoisting it ahead of item order changes nothing;
            // the gate itself only chooses between two bit-identical
            // routes, so adapting it on running stats is safe. Dead
            // (non-finite) items reuse stale coords here; their lanes are
            // computed and never consumed.
            let seen =
                self.stats.candidate_hits + self.stats.candidate_inserts + self.stats.vague_visits;
            let vague_heavy = seen > 4096 && self.stats.vague_visits * 3 > seen;
            if vague_heavy {
                let mut vks = [VagueKey(0); INGEST_CHUNK];
                for j in 0..chunk.len() {
                    vks[j] = VagueKey::new(coords[j].bucket, coords[j].fp);
                }
                self.vague
                    .fill_lanes(&vks[..chunk.len()], &mut vlanes[..chunk.len()]);
                for lanes in &vlanes[..chunk.len()] {
                    self.vague.prefetch_lanes(lanes);
                }
            }
            // Pass 2: apply in item order against warm bucket lines.
            // Election draws happen here, in item order.
            for j in 0..chunk.len() {
                if live[j] {
                    let lanes = if vague_heavy { Some(&vlanes[j]) } else { None };
                    if let Some(report) =
                        self.offer_hashed_with(coords[j], deltas[j], report_at, lanes)
                    {
                        sink(base + j, report);
                    }
                }
            }
            base += chunk.len();
        }
    }

    /// Query a key's current Qweight: candidate part first, then the vague
    /// estimate (§III-B query operation).
    pub fn query<K: StreamKey + ?Sized>(&self, key: &K) -> i64 {
        crate::telemetry::query();
        let HashedKey { bucket, fp } = self.candidate.coords_of(key);
        if let Some(qw) = self.candidate.get(bucket, fp) {
            return qw;
        }
        self.vague.estimate(VagueKey::new(bucket, fp))
    }

    /// Delete a key's Qweight (§III-B delete operation; also the first step
    /// of a per-key criteria change, §III-C). Returns the removed Qweight.
    pub fn delete<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64 {
        crate::telemetry::delete();
        let HashedKey { bucket, fp } = self.candidate.coords_of(key);
        if let Some(old) = self.candidate.reset_entry(bucket, fp) {
            return old;
        }
        self.vague.remove_estimate(VagueKey::new(bucket, fp))
    }

    /// Change the reporting criteria for a specific key (§III-C second
    /// flexibility): deletes the key's accumulated Qweight so subsequent
    /// inserts (passing the new criteria) start from an empty value set.
    pub fn modify_key_criteria<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64 {
        self.delete(key)
    }

    /// Periodic full reset (§III-B): clear both parts and the statistics.
    pub fn reset(&mut self) {
        self.candidate.clear();
        self.vague.clear();
        self.stats = FilterStats::default();
    }

    /// Stochastic-rounder RNG state, captured by snapshots so a restored
    /// filter rounds the resumed stream identically.
    pub(crate) fn rounder_state(&self) -> u64 {
        self.rounder.state()
    }

    /// Election RNG state, captured by snapshots for the same reason.
    pub(crate) fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Abort on any candidate-part invariant violation. Compiled only
    /// under the `strict-invariants` feature; called from the mutation
    /// sites that rewrite entries in place.
    ///
    /// # Panics
    /// Panics if the candidate part fails [`CheckInvariants`].
    #[cfg(feature = "strict-invariants")]
    fn assert_candidate_invariants(&self) {
        use qf_sketch::invariants::CheckInvariants;
        if let Err(e) = self.candidate.check_invariants() {
            panic!("strict-invariants: {e}");
        }
    }

    /// Reassemble a filter from fully-restored components, including the
    /// two RNG states and the running statistics.
    pub(crate) fn from_restored(
        criteria: Criteria,
        candidate: CandidatePart,
        vague_sketch: S,
        strategy: ElectionStrategy,
        rounder_state: u64,
        rng_state: u64,
        stats: FilterStats,
    ) -> Self {
        Self {
            criteria,
            candidate,
            vague: VaguePart::new(vague_sketch),
            strategy,
            rounder: StochasticRounder::from_state(rounder_state),
            rng: SplitMix64::from_state(rng_state),
            stats,
            report_at: criteria.report_threshold(),
            weight_above: criteria.weight_above(),
        }
    }
}

impl<S> qf_sketch::invariants::CheckInvariants for QuantileFilter<S>
where
    S: WeightSketch + qf_sketch::invariants::CheckInvariants,
{
    /// Audit the whole filter: candidate part, vague sketch, and the
    /// cross-structure relationship between slot occupancy and the running
    /// statistics (occupied entries are only ever created by the
    /// `Inserted` path, so occupancy can never exceed `candidate_inserts`).
    fn check_invariants(&self) -> Result<(), qf_sketch::invariants::InvariantViolation> {
        use qf_sketch::invariants::InvariantViolation as V;
        self.candidate.check_invariants()?;
        self.vague.inner().check_invariants()?;
        let occupancy = self.candidate.occupancy() as u64;
        if occupancy > self.stats.candidate_inserts {
            return Err(V::new(
                "QuantileFilter",
                format!(
                    "{} occupied entries but only {} recorded inserts",
                    occupancy, self.stats.candidate_inserts
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QuantileFilterBuilder;
    use crate::qweight::QweightTracker;
    use qf_sketch::CountMinSketch;

    fn small_filter(criteria: Criteria) -> QuantileFilter {
        QuantileFilterBuilder::new(criteria)
            .candidate_buckets(64)
            .bucket_len(6)
            .vague_dims(3, 512)
            .seed(7)
            .build()
    }

    fn default_criteria() -> Criteria {
        // δ = 0.9, ε = 5, T = 100 ⇒ weight +9 / −1, report at Qw ≥ 50.
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn hot_outstanding_key_is_reported() {
        let mut qf = small_filter(default_criteria());
        let mut reported = false;
        // All values above T: Qweight climbs +9 per item; report at item 6
        // (6·9 = 54 ≥ 50).
        for i in 0..20 {
            if let Some(r) = qf.insert(&1u64, 500.0) {
                reported = true;
                assert!(r.estimated_qweight >= 50);
                assert!(i >= 5, "report before enough evidence at item {i}");
            }
        }
        assert!(reported);
    }

    #[test]
    fn quiet_key_is_never_reported() {
        let mut qf = small_filter(default_criteria());
        for _ in 0..10_000 {
            assert!(qf.insert(&2u64, 10.0).is_none());
        }
    }

    #[test]
    fn report_resets_qweight() {
        let mut qf = small_filter(default_criteria());
        let mut reports = 0;
        for _ in 0..12 {
            if qf.insert(&3u64, 500.0).is_some() {
                reports += 1;
                // Right after a report the tracked Qweight must be zero.
                assert_eq!(qf.query(&3u64), 0);
            }
        }
        // 12 items · (+9) with reset at ≥50 ⇒ exactly two reports
        // (at items 6 and 12).
        assert_eq!(reports, 2);
    }

    #[test]
    fn matches_exact_tracker_on_single_key() {
        // With one key and ample space the filter is exact: its report
        // times equal the exact Qweight tracker's threshold crossings.
        let c = default_criteria();
        let mut qf = small_filter(c);
        let mut tracker = QweightTracker::new();
        let values: Vec<f64> = (0..500)
            .map(|i| if i % 3 == 0 { 500.0 } else { 5.0 })
            .collect();
        for &v in &values {
            let got = qf.insert(&9u64, v).is_some();
            tracker.observe(v, &c);
            let want = tracker.qweight(&c) >= c.report_threshold();
            assert_eq!(got, want, "divergence at value {v}");
            if want {
                tracker.reset();
            }
        }
    }

    #[test]
    fn mixed_values_follow_qweight_math() {
        // δ = 0.5 ⇒ +1/−1. Equal numbers above/below keep Qw at 0;
        // ε = 2 ⇒ threshold 4 never crossed.
        let c = Criteria::new(2.0, 0.5, 10.0).unwrap();
        let mut qf = small_filter(c);
        for i in 0..1000 {
            let v = if i % 2 == 0 { 20.0 } else { 5.0 };
            assert!(qf.insert(&4u64, v).is_none());
        }
    }

    #[test]
    fn query_sees_accumulation_and_delete_clears() {
        let mut qf = small_filter(default_criteria());
        for _ in 0..3 {
            qf.insert(&5u64, 500.0);
        }
        assert_eq!(qf.query(&5u64), 27);
        assert_eq!(qf.delete(&5u64), 27);
        assert_eq!(qf.query(&5u64), 0);
    }

    #[test]
    fn per_item_criteria_override() {
        let default = default_criteria();
        // Tight criteria for one key: δ = 0.9, ε = 1 ⇒ threshold 10.
        let tight = Criteria::new(1.0, 0.9, 100.0).unwrap();
        let mut qf = small_filter(default);
        let mut first_report_item = None;
        for i in 0..10 {
            if qf.insert_with_criteria(&6u64, 500.0, &tight).is_some()
                && first_report_item.is_none()
            {
                first_report_item = Some(i);
            }
        }
        // +9 per item crosses 10 at the second item.
        assert_eq!(first_report_item, Some(1));
    }

    #[test]
    fn many_keys_spill_to_vague_and_still_detect() {
        let c = default_criteria();
        let mut qf = small_filter(c);
        let mut outstanding_reported = false;
        // 5000 distinct cold keys overflow the 64×6 candidate part; one hot
        // outstanding key must still be caught via the vague part or an
        // exchange.
        for round in 0..40 {
            for k in 0u64..500 {
                qf.insert(&(k + 100), 5.0);
            }
            if qf.insert(&7u64, 500.0).is_some() && round >= 5 {
                outstanding_reported = true;
            }
        }
        assert!(outstanding_reported, "hot key lost in the crowd");
        assert!(qf.stats().vague_visits > 0, "vague part never exercised");
    }

    #[test]
    fn cms_vague_part_works_too() {
        let c = default_criteria();
        let mut qf: QuantileFilter<CountMinSketch<i32>> = QuantileFilterBuilder::new(c)
            .candidate_buckets(16)
            .bucket_len(4)
            .vague_dims(3, 256)
            .seed(9)
            .build_with_sketch(CountMinSketch::new(3, 256, 9));
        let mut reported = false;
        for _ in 0..100 {
            reported |= qf.insert(&1u64, 500.0).is_some();
        }
        assert!(reported);
        assert_eq!(qf.vague_part().kind_name(), "CMS");
    }

    #[test]
    fn stats_track_paths() {
        let mut qf = small_filter(default_criteria());
        for k in 0u64..2000 {
            qf.insert(&k, 5.0);
        }
        let s = qf.stats();
        assert!(s.candidate_inserts > 0);
        assert!(s.vague_visits > 0, "2000 keys must overflow 384 slots");

        // On an uncontended filter, repeat inserts of one key are pure
        // candidate hits after the first.
        let mut fresh = small_filter(default_criteria());
        for _ in 0..11 {
            fresh.insert(&1u64, 5.0);
        }
        assert_eq!(fresh.stats().candidate_inserts, 1);
        assert_eq!(fresh.stats().candidate_hits, 10);
        assert!(fresh.stats().candidate_hit_rate() > 0.9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut qf = small_filter(default_criteria());
        for _ in 0..5 {
            qf.insert(&8u64, 500.0);
        }
        qf.reset();
        assert_eq!(qf.query(&8u64), 0);
        assert_eq!(qf.stats().candidate_hits, 0);
    }

    #[test]
    fn exchange_promotes_heavy_key() {
        // Tiny candidate part (1 bucket × 1 slot) forces the election path.
        let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
        let mut qf: QuantileFilter = QuantileFilterBuilder::new(c)
            .candidate_buckets(1)
            .bucket_len(1)
            .vague_dims(3, 1024)
            .seed(11)
            .build();
        // Fill the slot with a cold key, then hammer a hot key.
        qf.insert(&100u64, 5.0);
        for _ in 0..4 {
            qf.insert(&200u64, 500.0);
        }
        // The hot key's vague estimate (+9 each) should have beaten the
        // cold key's −1 and swapped in.
        assert!(qf.stats().exchanges >= 1, "no exchange happened");
        let b = qf.candidate_part().bucket_of(&200u64);
        let fp = qf.candidate_part().fingerprint_of(&200u64);
        assert!(
            qf.candidate_part().get(b, fp).is_some(),
            "hot key not promoted"
        );
    }

    #[test]
    fn set_default_criteria_applies_to_future_inserts() {
        let mut qf = small_filter(default_criteria());
        let lax = Criteria::new(50.0, 0.9, 100.0).unwrap(); // threshold 500
        qf.set_default_criteria(lax);
        for _ in 0..20 {
            assert!(qf.insert(&12u64, 500.0).is_none());
        }
        assert_eq!(qf.default_criteria().epsilon(), 50.0);
    }

    #[test]
    fn set_default_criteria_refreshes_cached_thresholds() {
        // The derived report-threshold/weight cache must track criteria
        // changes: a filter switched to tighter criteria reports at exactly
        // the same item as a fresh filter built with them.
        let tight = Criteria::new(1.0, 0.9, 100.0).unwrap();
        let mut switched = small_filter(default_criteria());
        switched.set_default_criteria(tight);
        let mut fresh = small_filter(tight);
        for i in 0..10 {
            assert_eq!(
                switched.insert(&30u64, 500.0).is_some(),
                fresh.insert(&30u64, 500.0).is_some(),
                "divergence at item {i}"
            );
        }
    }

    #[test]
    fn epsilon_zero_single_item_report() {
        // ε = 0, δ = 0.5, T = 10: one value above T gives Qw = +1 ≥ 0 ⇒
        // immediate report (the "premature reporting" the paper's ε > 0
        // avoids — but legal when the user asks for it).
        let c = Criteria::new(0.0, 0.5, 10.0).unwrap();
        let mut qf = small_filter(c);
        let r = qf.insert(&13u64, 100.0);
        assert!(r.is_some());
    }

    #[test]
    fn non_finite_values_would_corrupt_qweight_accounting() {
        // The raw item-weight function has no NaN/∞ defense: NaN fails
        // `value > T` and lands on the −1 side, +∞ lands on the +δ/(1−δ)
        // side. A poisoned stream therefore used to shift Qweights silently
        // — which is exactly why the filter guards the API boundary.
        let c = default_criteria();
        assert_eq!(c.item_weight(f64::NAN), -1.0);
        assert_eq!(c.item_weight(f64::NEG_INFINITY), -1.0);
        assert_eq!(c.item_weight(f64::INFINITY), c.weight_above());
    }

    #[test]
    fn infallible_insert_drops_non_finite() {
        let mut qf = small_filter(default_criteria());
        for _ in 0..3 {
            qf.insert(&21u64, 500.0);
        }
        let before = qf.query(&21u64);
        let stats_before = qf.stats();
        assert!(qf.insert(&21u64, f64::NAN).is_none());
        assert!(qf.insert(&21u64, f64::INFINITY).is_none());
        assert!(qf.insert(&21u64, f64::NEG_INFINITY).is_none());
        // Dropped items leave both the Qweight and the path stats untouched.
        assert_eq!(qf.query(&21u64), before);
        assert_eq!(qf.stats().candidate_hits, stats_before.candidate_hits);
        assert_eq!(qf.stats().vague_visits, stats_before.vague_visits);
    }

    #[test]
    fn try_insert_reports_non_finite() {
        let mut qf = small_filter(default_criteria());
        match qf.try_insert(&22u64, f64::NAN) {
            Err(crate::error::QfError::NonFiniteValue { value }) => assert!(value.is_nan()),
            other => panic!("expected NonFiniteValue, got {other:?}"),
        }
        assert!(matches!(
            qf.try_insert(&22u64, f64::INFINITY),
            Err(crate::error::QfError::NonFiniteValue { .. })
        ));
        // Finite values flow through identically to insert().
        assert_eq!(qf.try_insert(&22u64, 500.0).unwrap(), None);
        assert_eq!(qf.query(&22u64), 9);
    }

    #[test]
    fn memory_accounting_sums_parts() {
        let qf = small_filter(default_criteria());
        assert_eq!(
            qf.memory_bytes(),
            qf.candidate_part().memory_bytes() + qf.vague_part().memory_bytes()
        );
    }

    #[test]
    fn insert_batch_matches_sequential_inserts() {
        // Identically-seeded twins over a collision-heavy trace: the batch
        // path must reproduce the scalar path bit for bit — same report
        // sequence at the same item indices, same stats, same final state.
        let c = default_criteria();
        let build = || {
            QuantileFilterBuilder::new(c)
                .candidate_buckets(8)
                .bucket_len(2)
                .vague_dims(3, 256)
                .seed(0xBA7C)
                .build()
        };
        let mut scalar = build();
        let mut batched = build();

        let mut rng = qf_hash::SplitMix64::new(99);
        let items: Vec<(u64, f64)> = (0..20_000)
            .map(|_| {
                let key = rng.next_u64() % 400;
                let value = if rng.next_u64() % 100 < 60 {
                    500.0
                } else {
                    5.0
                };
                (key, value)
            })
            .collect();

        let mut want = Vec::new();
        for (i, &(k, v)) in items.iter().enumerate() {
            if let Some(r) = scalar.insert(&k, v) {
                want.push((i, r));
            }
        }
        let mut got = Vec::new();
        batched.insert_batch(&items, &mut |i, r| got.push((i, r)));

        assert!(!want.is_empty(), "trace produced no reports — too tame");
        assert_eq!(got, want, "batch report sequence diverged from scalar");
        let (s, b) = (scalar.stats(), batched.stats());
        assert_eq!(s.candidate_hits, b.candidate_hits);
        assert_eq!(s.vague_visits, b.vague_visits);
        assert_eq!(s.exchanges, b.exchanges);
        assert_eq!(s.reports, b.reports);
        assert_eq!(scalar.rounder_state(), batched.rounder_state());
        assert_eq!(scalar.rng_state(), batched.rng_state());
        for k in 0u64..400 {
            assert_eq!(
                scalar.query(&k),
                batched.query(&k),
                "state differs at key {k}"
            );
        }
    }

    #[test]
    fn insert_batch_drops_non_finite_like_scalar() {
        let c = default_criteria();
        let mut qf = small_filter(c);
        let items = [
            (1u64, 500.0),
            (1u64, f64::NAN),
            (1u64, f64::INFINITY),
            (1u64, 500.0),
        ];
        qf.insert_batch(&items, &mut |_, _| {});
        // Only the two finite items count: Qweight 2 × (+9).
        assert_eq!(qf.query(&1u64), 18);
        assert_eq!(qf.stats().candidate_hits + qf.stats().candidate_inserts, 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut qf = small_filter(default_criteria());
        let mut fired = false;
        qf.insert_batch::<u64, _>(&[], &mut |_, _| fired = true);
        assert!(!fired);
        assert_eq!(qf.stats().candidate_inserts, 0);
    }

    /// A [`WeightSketch`] shim that counts how many times each estimate
    /// derivation path runs, pinning the one-estimate-per-insert contract.
    #[derive(Debug, Clone)]
    struct CountingSketch {
        inner: CountSketch<i8>,
        adds: std::cell::Cell<u64>,
        estimates: std::cell::Cell<u64>,
        removes: std::cell::Cell<u64>,
        fused: std::cell::Cell<u64>,
        fetches: std::cell::Cell<u64>,
    }

    impl CountingSketch {
        fn new(inner: CountSketch<i8>) -> Self {
            Self {
                inner,
                adds: std::cell::Cell::new(0),
                estimates: std::cell::Cell::new(0),
                removes: std::cell::Cell::new(0),
                fused: std::cell::Cell::new(0),
                fetches: std::cell::Cell::new(0),
            }
        }
    }

    impl WeightSketch for CountingSketch {
        fn add<K: StreamKey + ?Sized>(&mut self, key: &K, delta: i64) {
            self.adds.set(self.adds.get() + 1);
            self.inner.add(key, delta);
        }
        fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> i64 {
            self.estimates.set(self.estimates.get() + 1);
            self.inner.estimate(key)
        }
        fn remove_estimate<K: StreamKey + ?Sized>(&mut self, key: &K) -> i64 {
            self.removes.set(self.removes.get() + 1);
            self.inner.remove_estimate(key)
        }
        fn prepare_lanes<K: StreamKey + ?Sized>(&self, key: &K) -> qf_hash::RowLanes {
            self.inner.prepare_lanes(key)
        }
        fn add_and_estimate<K: StreamKey + ?Sized>(
            &mut self,
            key: &K,
            lanes: &qf_hash::RowLanes,
            delta: i64,
        ) -> i64 {
            self.fused.set(self.fused.get() + 1);
            self.inner.add_and_estimate(key, lanes, delta)
        }
        fn fetch_remove<K: StreamKey + ?Sized>(
            &mut self,
            key: &K,
            lanes: &qf_hash::RowLanes,
            estimate: i64,
        ) -> i64 {
            self.fetches.set(self.fetches.get() + 1);
            self.inner.fetch_remove(key, lanes, estimate)
        }
        fn clear(&mut self) {
            self.inner.clear();
        }
        fn memory_bytes(&self) -> usize {
            self.inner.memory_bytes()
        }
        fn kind_name(&self) -> &'static str {
            self.inner.kind_name()
        }
    }

    #[test]
    fn insert_computes_exactly_one_estimate_per_vague_visit() {
        // Regression for the old three-query flow (add → estimate →
        // remove_estimate, each rehashing and the last re-deriving the
        // estimate): every vague visit must run exactly one fused
        // add-and-estimate, and the report/election resets must reuse that
        // value via fetch_remove — never a standalone estimate or a
        // re-deriving remove_estimate.
        let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
        let candidate = match CandidatePart::try_new(1, 1, 17) {
            Some(p) => p,
            None => panic!("candidate part"),
        };
        let sketch = CountingSketch::new(CountSketch::new(3, 512, 17));
        let mut qf =
            QuantileFilter::from_parts(c, candidate, sketch, ElectionStrategy::Comparative, 17);

        // A 1×1 candidate part funnels nearly everything through the vague
        // path, exercising plain visits, elections, and vague reports.
        let mut rng = qf_hash::SplitMix64::new(5);
        for _ in 0..5_000 {
            let key = rng.next_u64() % 64;
            let value = if rng.next_u64() % 100 < 70 {
                500.0
            } else {
                5.0
            };
            qf.insert(&key, value);
        }

        let visits = qf.stats().vague_visits;
        assert!(visits > 1_000, "vague path barely exercised: {visits}");
        let s = qf.vague_part().inner();
        assert_eq!(
            s.fused.get(),
            visits,
            "each vague visit must derive its estimate exactly once"
        );
        assert_eq!(s.estimates.get(), 0, "standalone estimate on insert path");
        assert_eq!(
            s.removes.get(),
            0,
            "re-deriving remove_estimate on insert path"
        );
        assert!(
            s.fetches.get() <= visits,
            "at most one reset per vague visit"
        );
        // The election's incumbent push-back is the only plain add left.
        assert_eq!(s.adds.get(), qf.stats().exchanges);
    }
}
