//! Iterator-style streaming API: pipe any `(key, value)` iterator through a
//! QuantileFilter and consume the reports as they fire.
//!
//! This is sugar over [`QuantileFilter::insert`] for batch/replay use
//! cases (trace files, channel drains); the hot online path should call
//! `insert` directly.

use crate::filter::{QuantileFilter, Report};
use qf_hash::StreamKey;
use qf_sketch::WeightSketch;

/// An iterator adapter yielding `(key, report)` for every item that
/// triggers a report.
pub struct Reports<'f, I, K, S: WeightSketch> {
    filter: &'f mut QuantileFilter<S>,
    items: I,
    _key: core::marker::PhantomData<K>,
}

impl<'f, I, K, S> Iterator for Reports<'f, I, K, S>
where
    I: Iterator<Item = (K, f64)>,
    K: StreamKey,
    S: WeightSketch,
{
    type Item = (K, Report);

    fn next(&mut self) -> Option<Self::Item> {
        for (key, value) in self.items.by_ref() {
            if let Some(report) = self.filter.insert(&key, value) {
                return Some((key, report));
            }
        }
        None
    }
}

/// Extension trait adding [`detect`](DetectExt::detect) to `(key, value)`
/// iterators.
pub trait DetectExt<K: StreamKey>: Iterator<Item = (K, f64)> + Sized {
    /// Stream through `filter`, yielding only the reported items.
    ///
    /// ```
    /// use quantile_filter::{Criteria, QuantileFilterBuilder};
    /// use quantile_filter::stream::DetectExt;
    ///
    /// let criteria = Criteria::new(2.0, 0.5, 10.0).unwrap();
    /// let mut qf = QuantileFilterBuilder::new(criteria)
    ///     .memory_budget_bytes(4096)
    ///     .build();
    /// let stream = (0..100u64).map(|i| (i % 4, if i % 4 == 0 { 50.0 } else { 1.0 }));
    /// let reports: Vec<_> = stream.detect(&mut qf).collect();
    /// assert!(reports.iter().all(|(k, _)| *k == 0));
    /// assert!(!reports.is_empty());
    /// ```
    fn detect<S: WeightSketch>(self, filter: &mut QuantileFilter<S>) -> Reports<'_, Self, K, S> {
        Reports {
            filter,
            items: self,
            _key: core::marker::PhantomData,
        }
    }
}

impl<K: StreamKey, I: Iterator<Item = (K, f64)>> DetectExt<K> for I {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QuantileFilterBuilder;
    use crate::criteria::Criteria;

    fn filter() -> QuantileFilter {
        QuantileFilterBuilder::new(Criteria::new(5.0, 0.9, 100.0).unwrap())
            .candidate_buckets(32)
            .vague_dims(3, 256)
            .seed(1)
            .build()
    }

    #[test]
    fn adapter_yields_only_reports() {
        let mut qf = filter();
        let stream = (0..100u64).map(|i| (7u64, if i < 50 { 500.0 } else { 5.0 }));
        let reports: Vec<(u64, Report)> = stream.detect(&mut qf).collect();
        // 50 above-T items at +9: crossings at 6, 12, ..., 48 ⇒ 8 reports.
        assert_eq!(reports.len(), 8);
        assert!(reports.iter().all(|(k, _)| *k == 7));
    }

    #[test]
    fn adapter_exhausts_quiet_stream() {
        let mut qf = filter();
        let stream = (0..1000u64).map(|i| (i % 10, 5.0));
        assert_eq!(stream.detect(&mut qf).count(), 0);
    }

    #[test]
    fn adapter_interoperates_with_take() {
        let mut qf = filter();
        let stream = std::iter::repeat_n((3u64, 500.0), 100);
        let first = stream.detect(&mut qf).next();
        assert!(first.is_some());
        // State persists on the borrowed filter after the adapter ends.
        assert_eq!(qf.query(&3u64), 0, "reported key was reset");
    }
}
