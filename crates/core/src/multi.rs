//! Multi-criteria monitoring (§III-C third flexibility): watch one key
//! under several `⟨ε, δ, T⟩` criteria at once.
//!
//! One Qweight cannot serve two criteria (unless only ε differs), so the
//! paper forms composite keys: data key × criterion number. A key with `r`
//! criteria becomes `r` logical keys and `r` inserts; "the overhead of this
//! scheme increases with r, but it performs well when r is small."

use crate::criteria::Criteria;
use crate::error::QfError;
use crate::filter::{QuantileFilter, Report};
use qf_hash::StreamKey;
use qf_sketch::WeightSketch;

/// A QuantileFilter wrapper that monitors every key under a fixed list of
/// criteria simultaneously.
#[derive(Debug, Clone)]
pub struct MultiCriteriaFilter<S: WeightSketch> {
    filter: QuantileFilter<S>,
    criteria: Vec<Criteria>,
}

impl<S: WeightSketch> MultiCriteriaFilter<S> {
    /// Wrap a filter with the criteria set to monitor, or a typed error if
    /// `criteria` is empty.
    pub fn try_new(filter: QuantileFilter<S>, criteria: Vec<Criteria>) -> Result<Self, QfError> {
        if criteria.is_empty() {
            return Err(QfError::InvalidConfig {
                reason: "need at least one criterion".into(),
            });
        }
        Ok(Self { filter, criteria })
    }

    /// Wrap a filter with the criteria set to monitor.
    ///
    /// # Panics
    /// Panics if `criteria` is empty.
    pub fn new(filter: QuantileFilter<S>, criteria: Vec<Criteria>) -> Self {
        match Self::try_new(filter, criteria) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// The number of criteria `r`.
    pub fn criteria_count(&self) -> usize {
        self.criteria.len()
    }

    /// The monitored criteria.
    pub fn criteria(&self) -> &[Criteria] {
        &self.criteria
    }

    /// Insert an item, streaming every `(criterion index, report)` pair
    /// that fired into `sink` — the allocation-free primary path,
    /// matching the caller-supplied-sink shape of `insert_batch` in the
    /// detector trait. Performs `r` composite-key inserts; non-finite
    /// values are dropped (as in [`QuantileFilter::insert`]).
    ///
    /// An earlier version cloned the whole criteria `Vec` *and* allocated
    /// a fresh result `Vec` on every insert; indexed criteria copies
    /// (`Criteria` is `Copy`) and the sink remove both from the per-item
    /// path, which QF-L002 now holds to the hot-path standard.
    pub fn insert_into<K: StreamKey>(
        &mut self,
        key: &K,
        value: f64,
        sink: &mut impl FnMut(usize, Report),
    ) {
        if !value.is_finite() {
            return;
        }
        for idx in 0..self.criteria.len() {
            let c = self.criteria[idx];
            let composite = (key, idx as u32);
            if let Some(report) = self.filter.insert_with_criteria(&composite, value, &c) {
                sink(idx, report);
            }
        }
    }

    /// Insert an item and collect the fired `(criterion index, report)`
    /// pairs into a fresh `Vec` — a thin compatibility wrapper over
    /// [`Self::insert_into`] for callers that prefer the allocating
    /// shape; hot loops should pass their own sink instead.
    pub fn insert<K: StreamKey>(&mut self, key: &K, value: f64) -> Vec<(usize, Report)> {
        let mut out = Vec::new();
        self.insert_into(key, value, &mut |idx, report| out.push((idx, report)));
        out
    }

    /// Query the Qweight of a key under one criterion.
    pub fn query<K: StreamKey>(&self, key: &K, criterion: usize) -> i64 {
        self.filter.query(&(key, criterion as u32))
    }

    /// Delete a key's state under every criterion.
    pub fn delete<K: StreamKey>(&mut self, key: &K) {
        for idx in 0..self.criteria.len() {
            self.filter.delete(&(key, idx as u32));
        }
    }

    /// Total charged memory.
    pub fn memory_bytes(&self) -> usize {
        self.filter.memory_bytes()
    }

    /// Borrow the wrapped filter.
    pub fn inner(&self) -> &QuantileFilter<S> {
        &self.filter
    }
}

impl<S> qf_sketch::invariants::CheckInvariants for MultiCriteriaFilter<S>
where
    S: WeightSketch + qf_sketch::invariants::CheckInvariants,
{
    /// Audit the criteria list (never empty — enforced at construction)
    /// and the wrapped filter.
    fn check_invariants(&self) -> Result<(), qf_sketch::invariants::InvariantViolation> {
        use qf_sketch::invariants::InvariantViolation as V;
        if self.criteria.is_empty() {
            return Err(V::new("MultiCriteriaFilter", "criteria list is empty"));
        }
        self.filter.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::QuantileFilterBuilder;
    use qf_sketch::CountSketch;

    fn multi() -> MultiCriteriaFilter<CountSketch<i8>> {
        let filter = QuantileFilterBuilder::new(Criteria::default())
            .candidate_buckets(128)
            .vague_dims(3, 1024)
            .seed(3)
            .build();
        // Criterion 0: p90 > 100 with ε = 5 (threshold 50, +9/−1).
        // Criterion 1: p50 > 400 with ε = 3 (threshold 6, +1/−1).
        MultiCriteriaFilter::new(
            filter,
            vec![
                Criteria::new(5.0, 0.9, 100.0).unwrap(),
                Criteria::new(3.0, 0.5, 400.0).unwrap(),
            ],
        )
    }

    #[test]
    fn criteria_fire_independently() {
        let mut m = multi();
        // Values of 200: above criterion 0's T (100) but below criterion
        // 1's T (400) — only criterion 0 should ever fire.
        let mut fired = [0usize; 2];
        for _ in 0..50 {
            for (idx, _) in m.insert(&1u64, 200.0) {
                fired[idx] += 1;
            }
        }
        assert!(fired[0] > 0, "criterion 0 must fire");
        assert_eq!(fired[1], 0, "criterion 1 must not fire");
    }

    #[test]
    fn both_fire_on_extreme_values() {
        let mut m = multi();
        let mut fired = [0usize; 2];
        for _ in 0..50 {
            for (idx, _) in m.insert(&2u64, 500.0) {
                fired[idx] += 1;
            }
        }
        assert!(fired[0] > 0);
        assert!(fired[1] > 0);
    }

    #[test]
    fn per_criterion_state_is_separate() {
        let mut m = multi();
        for _ in 0..3 {
            m.insert(&3u64, 200.0);
        }
        // Criterion 0 accumulated +9·3 = 27; criterion 1 accumulated −3.
        assert_eq!(m.query(&3u64, 0), 27);
        assert_eq!(m.query(&3u64, 1), -3);
    }

    #[test]
    fn delete_clears_all_criteria() {
        let mut m = multi();
        for _ in 0..3 {
            m.insert(&4u64, 500.0);
        }
        m.delete(&4u64);
        assert_eq!(m.query(&4u64, 0), 0);
        assert_eq!(m.query(&4u64, 1), 0);
    }

    #[test]
    fn insert_into_matches_allocating_wrapper() {
        // Two identically-seeded filters, one driven through the sink
        // path and one through the wrapper: report-for-report identical.
        let mut a = multi();
        let mut b = multi();
        for round in 0..200u64 {
            let key = round % 7;
            let value = if round % 3 == 0 { 500.0 } else { 200.0 };
            let mut via_sink = Vec::new();
            a.insert_into(&key, value, &mut |idx, report| via_sink.push((idx, report)));
            let via_wrapper = b.insert(&key, value);
            assert_eq!(via_sink, via_wrapper, "round {round}");
        }
    }

    #[test]
    fn non_finite_values_hit_no_criterion() {
        let mut m = multi();
        let mut fired = 0usize;
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            m.insert_into(&9u64, bad, &mut |_, _| fired += 1);
        }
        assert_eq!(fired, 0);
        assert_eq!(m.query(&9u64, 0), 0, "state untouched by dropped values");
    }

    #[test]
    #[should_panic(expected = "at least one criterion")]
    fn empty_criteria_rejected() {
        let filter = QuantileFilterBuilder::new(Criteria::default())
            .candidate_buckets(4)
            .vague_dims(2, 64)
            .build();
        let _ = MultiCriteriaFilter::new(filter, vec![]);
    }
}
