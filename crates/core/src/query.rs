//! Parser for the paper's SQL-style detection statement (§I):
//!
//! ```sql
//! SELECT key FROM key_value_stream
//! GROUP BY key
//! HAVING QUANTILE(value_set, 0.95) >= 300 [WITH eps = 30]
//! ```
//!
//! [`parse_query`] turns that text into a [`Criteria`], so monitoring
//! configs can be written in the notation the paper introduces the problem
//! with. The grammar is deliberately tiny: the `SELECT … GROUP BY key`
//! skeleton is validated, the `HAVING QUANTILE(value_set, δ) >= T` clause
//! supplies `δ` and `T`, and an optional `WITH eps = ε` suffix supplies
//! the rank deviation (default 0).

use crate::criteria::{Criteria, CriteriaError};

/// Error from [`parse_query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The statement skeleton did not match the expected form.
    Malformed(String),
    /// A numeric literal failed to parse.
    BadNumber(String),
    /// The numbers were out of range for [`Criteria`].
    BadCriteria(CriteriaError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(part) => write!(f, "malformed query near {part:?}"),
            Self::BadNumber(tok) => write!(f, "invalid number {tok:?}"),
            Self::BadCriteria(e) => write!(f, "invalid criteria: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<CriteriaError> for QueryError {
    fn from(e: CriteriaError) -> Self {
        Self::BadCriteria(e)
    }
}

fn parse_number(tok: &str) -> Result<f64, QueryError> {
    tok.trim()
        .parse::<f64>()
        .map_err(|_| QueryError::BadNumber(tok.trim().to_string()))
}

/// Parse the paper's SQL form into a [`Criteria`].
///
/// Case-insensitive; whitespace-flexible; accepts `>=` or `>` (both mean
/// Definition 4's strict quantile test — the ε slack is where laxity
/// belongs).
///
/// ```
/// use quantile_filter::query::parse_query;
/// let c = parse_query(
///     "SELECT key FROM s GROUP BY key \
///      HAVING QUANTILE(value_set, 0.95) >= 300 WITH eps = 30",
/// ).unwrap();
/// assert_eq!(c.delta(), 0.95);
/// assert_eq!(c.threshold(), 300.0);
/// assert_eq!(c.epsilon(), 30.0);
/// ```
pub fn parse_query(sql: &str) -> Result<Criteria, QueryError> {
    let upper = sql.to_ascii_uppercase();
    let compact: String = upper.split_whitespace().collect::<Vec<_>>().join(" ");

    // Skeleton: SELECT KEY FROM <ident> GROUP BY KEY HAVING …
    if !compact.starts_with("SELECT KEY FROM ") {
        return Err(QueryError::Malformed("SELECT key FROM".into()));
    }
    let Some(group_at) = compact.find(" GROUP BY KEY HAVING ") else {
        return Err(QueryError::Malformed("GROUP BY key HAVING".into()));
    };
    let having = &compact[group_at + " GROUP BY KEY HAVING ".len()..];

    // QUANTILE(VALUE_SET, δ) >= T [WITH EPS = ε]
    let rest = having
        .strip_prefix("QUANTILE(")
        .ok_or_else(|| QueryError::Malformed("QUANTILE(".into()))?;
    let Some(close) = rest.find(')') else {
        return Err(QueryError::Malformed("closing parenthesis".into()));
    };
    let args = &rest[..close];
    let mut parts = args.split(',');
    let _value_set = parts
        .next()
        .ok_or_else(|| QueryError::Malformed("value_set argument".into()))?;
    let delta_tok = parts
        .next()
        .ok_or_else(|| QueryError::Malformed("delta argument".into()))?;
    if parts.next().is_some() {
        return Err(QueryError::Malformed("too many QUANTILE arguments".into()));
    }
    let delta = parse_number(delta_tok)?;

    let after = rest[close + 1..].trim_start();
    let after = after
        .strip_prefix(">=")
        .or_else(|| after.strip_prefix('>'))
        .ok_or_else(|| QueryError::Malformed(">= threshold".into()))?
        .trim_start();

    // Threshold runs until optional WITH clause.
    let (threshold_tok, with_clause) = match after.find(" WITH ") {
        Some(i) => (&after[..i], Some(&after[i + " WITH ".len()..])),
        None => (after, None),
    };
    let threshold = parse_number(threshold_tok)?;

    let epsilon = match with_clause {
        None => 0.0,
        Some(w) => {
            let w = w.trim();
            let eq = w
                .strip_prefix("EPS")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .ok_or_else(|| QueryError::Malformed("WITH eps = ...".into()))?;
            parse_number(eq)?
        }
    };

    Ok(Criteria::new(epsilon, delta, threshold)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_statement_parses() {
        let c = parse_query(
            "SELECT key FROM Key_Value_Stream GROUP BY key \
             HAVING QUANTILE(value_set, 0.95) >= 300",
        )
        .unwrap();
        assert_eq!(c.delta(), 0.95);
        assert_eq!(c.threshold(), 300.0);
        assert_eq!(c.epsilon(), 0.0);
    }

    #[test]
    fn with_eps_clause() {
        let c = parse_query(
            "select key from s group by key having quantile(value_set, 0.9) > 200 with eps = 5",
        )
        .unwrap();
        assert_eq!(c.epsilon(), 5.0);
        assert_eq!(c.delta(), 0.9);
        assert_eq!(c.threshold(), 200.0);
    }

    #[test]
    fn whitespace_and_case_insensitive() {
        let c = parse_query(
            "  SeLeCt   key   FROM  x \n GROUP BY key \n HAVING  QUANTILE( value_set ,  0.5 )>=3 ",
        )
        .unwrap();
        assert_eq!(c.delta(), 0.5);
        assert_eq!(c.threshold(), 3.0);
    }

    #[test]
    fn negative_threshold_allowed() {
        let c =
            parse_query("SELECT key FROM s GROUP BY key HAVING QUANTILE(value_set, 0.8) >= -2.5")
                .unwrap();
        assert_eq!(c.threshold(), -2.5);
    }

    #[test]
    fn malformed_skeleton_rejected() {
        assert!(matches!(
            parse_query("SELECT * FROM s"),
            Err(QueryError::Malformed(_))
        ));
        assert!(matches!(
            parse_query("SELECT key FROM s GROUP BY key"),
            Err(QueryError::Malformed(_))
        ));
        assert!(matches!(
            parse_query("SELECT key FROM s GROUP BY key HAVING COUNT(*) > 3"),
            Err(QueryError::Malformed(_))
        ));
    }

    #[test]
    fn bad_numbers_rejected() {
        assert!(matches!(
            parse_query("SELECT key FROM s GROUP BY key HAVING QUANTILE(value_set, abc) >= 3"),
            Err(QueryError::BadNumber(_))
        ));
        assert!(matches!(
            parse_query("SELECT key FROM s GROUP BY key HAVING QUANTILE(value_set, 0.5) >= xyz"),
            Err(QueryError::BadNumber(_))
        ));
    }

    #[test]
    fn out_of_range_delta_rejected() {
        assert!(matches!(
            parse_query("SELECT key FROM s GROUP BY key HAVING QUANTILE(value_set, 1.5) >= 3"),
            Err(QueryError::BadCriteria(_))
        ));
    }

    #[test]
    fn parsed_criteria_drive_a_filter() {
        use crate::builder::QuantileFilterBuilder;
        let c = parse_query(
            "SELECT key FROM s GROUP BY key HAVING QUANTILE(value_set, 0.9) >= 100 WITH eps = 5",
        )
        .unwrap();
        let mut qf = QuantileFilterBuilder::new(c)
            .memory_budget_bytes(8 * 1024)
            .build();
        let mut reported = false;
        for _ in 0..10 {
            reported |= qf.insert(&1u64, 500.0).is_some();
        }
        assert!(reported);
    }
}
