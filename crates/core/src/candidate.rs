//! The candidate part (§III-B): `m` buckets of `b` entries, each entry a
//! `⟨fingerprint, Qweight⟩` pair tracking a likely-outstanding key exactly.
//!
//! Entries store a 16-bit fingerprint plus a 32-bit signed Qweight counter.
//! Space accounting per entry is therefore 6 bytes, which is what the
//! paper's memory axis (candidate ≈ 80% of the budget at the default 4:1
//! split) charges.
//!
//! # Layout: structure-of-arrays
//!
//! The part stores three parallel arrays instead of an array of slot
//! structs: a flat `Vec<u16>` of fingerprints, a flat `Vec<i32>` of
//! Qweights, and a per-bucket occupancy bitmask. A bucket is the contiguous
//! range `[bucket·b, (bucket+1)·b)` of each array (the cuckoo-filter
//! layout). This is what makes the hot bucket scan data-parallel: the probe
//! fingerprint is broadcast across the four 16-bit lanes of a `u64` and
//! compared against packed fingerprint words with the branch-free SWAR
//! detectors of `qf_sketch::simd`, so a 6-entry bucket resolves in two
//! packed compares instead of six compare-and-branch iterations. The
//! fingerprint array carries [`FP_PAD`] zeroed cells of tail padding so
//! every bucket's probe window is whole packed words with no scalar
//! remainder (the Qweight array carries the same amount of *saturated*
//! padding for the fixed-window election — see [`QW_PAD_VALUE`]). The
//! occupancy mask exists because `fp == 0, qw == 0` is a
//! *valid occupied entry* — occupancy cannot be inferred from the payload
//! arrays — but since free slots keep a zeroed fingerprint, only `fp == 0`
//! probes ever consult it on the match path; as a bonus the
//! first-free-slot election becomes a single `trailing_zeros`.
//!
//! The snapshot wire format is unchanged from the AoS layout (per slot:
//! occupancy byte, fingerprint, Qweight, in slot order), so snapshots
//! written by either layout restore into the other bit-identically.

use qf_hash::wire::{ByteReader, ByteWriter, WireError};
use qf_hash::{fingerprint16, fingerprint16_prehashed, HashedKey, RowHasher, StreamKey};
use qf_sketch::simd::{broadcast4, eq_lanes4, movemask4, pack4, LANES_PER_WORD};

/// Bytes charged per entry: 2 (fingerprint) + 4 (Qweight counter).
pub const ENTRY_BYTES: usize = 6;

/// Zeroed fingerprint slots appended past the last bucket so every bucket's
/// probe window `[start, start + bucket_len.next_multiple_of(4))` is in
/// bounds — the SWAR scan then runs whole packed words with no scalar
/// remainder loop. Padding (and any cross-bucket lanes inside the window)
/// is stripped by the bucket mask before match bits are consumed, and the
/// padding cells are never written, so they stay zero for the life of the
/// part (enforced by `check_invariants`). Not charged by `memory_bytes`.
const FP_PAD: usize = LANES_PER_WORD - 1;

/// Value of the Qweight padding cells appended past the last bucket (the
/// analogue of [`FP_PAD`] for the `qws` array). `i32::MAX` instead of zero:
/// the full-bucket election loads a fixed eight-lane window that may reach
/// into the tail, and a saturated padding lane can never win a strict
/// minimum over a live lane, so the fixed-window min needs no tail branch.
/// (An all-saturated bucket ties the padding; the election masks the result
/// to live lanes, so even that degenerate case cannot elect padding.)
/// Like the fingerprint padding, these cells are never written and are not
/// charged by `memory_bytes`.
const QW_PAD_VALUE: i32 = i32::MAX;

/// Outcome of offering an item to the candidate part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// The key's fingerprint matched; its Qweight is now the payload.
    Updated {
        /// Qweight after the update.
        qweight: i64,
    },
    /// The bucket had room; a fresh entry was created with the item weight.
    Inserted,
    /// Bucket full and no match: the caller must go to the vague part.
    BucketFull,
}

/// Outcome of the fused walk [`CandidatePart::offer_or_min`]. Identical to
/// [`CandidateOutcome`] except that the bucket-full case carries the
/// bucket's minimum entry, discovered during the same pass over the slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// The key's fingerprint matched; its Qweight is now the payload.
    Updated {
        /// Qweight after the update.
        qweight: i64,
    },
    /// The bucket had room; a fresh entry was created with the item weight.
    Inserted,
    /// Bucket full and no match: the caller must go to the vague part.
    /// `⟨min_fp, min_qw⟩` is the bucket's minimum-Qweight entry (Algorithm 2
    /// line 14), so the election needs no second scan of the bucket.
    BucketFull {
        /// Fingerprint of the minimum-Qweight entry.
        min_fp: u16,
        /// That entry's Qweight.
        min_qw: i64,
    },
}

/// The candidate array, in structure-of-arrays layout (see module docs).
#[derive(Debug, Clone)]
pub struct CandidatePart {
    /// Fingerprint of every slot; 0 for free slots.
    fps: Vec<u16>,
    /// Qweight of every slot; 0 for free slots.
    qws: Vec<i32>,
    /// Occupancy bitmask, `occ_words` words per bucket; bit `i` of a
    /// bucket's word group ⇔ slot `i` occupied.
    occ: Vec<u64>,
    buckets: usize,
    bucket_len: usize,
    /// `bucket_len.div_ceil(64)` — words of occupancy per bucket.
    occ_words: usize,
    bucket_hash: RowHasher,
    fp_seed: u64,
}

impl CandidatePart {
    /// Create a part with `buckets` buckets of `bucket_len` entries, or
    /// `None` if either dimension is zero.
    pub fn try_new(buckets: usize, bucket_len: usize, seed: u64) -> Option<Self> {
        if bucket_len == 0 {
            return None;
        }
        let bucket_hash = RowHasher::from_parts(buckets, seed ^ 0xB0C4_15E5)?;
        let occ_words = bucket_len.div_ceil(64);
        Some(Self {
            fps: vec![0; buckets * bucket_len + FP_PAD],
            qws: {
                let mut qws = vec![0; buckets * bucket_len + FP_PAD];
                qws[buckets * bucket_len..].fill(QW_PAD_VALUE);
                qws
            },
            occ: vec![0; buckets * occ_words],
            buckets,
            bucket_len,
            occ_words,
            bucket_hash,
            fp_seed: seed ^ 0xF19E_12F1,
        })
    }

    /// Create a part with `buckets` buckets of `bucket_len` entries.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(buckets: usize, bucket_len: usize, seed: u64) -> Self {
        match Self::try_new(buckets, bucket_len, seed) {
            Some(part) => part,
            None if buckets == 0 => panic!("need at least one bucket"),
            None => panic!("need at least one entry per bucket"),
        }
    }

    /// Build the largest part with `bucket_len`-entry buckets that fits a
    /// byte budget (≥ 1 bucket); `None` if `bucket_len == 0`.
    pub fn try_with_memory_budget(bucket_len: usize, bytes: usize, seed: u64) -> Option<Self> {
        if bucket_len == 0 {
            return None;
        }
        let buckets = (bytes / (bucket_len * ENTRY_BYTES)).max(1);
        Self::try_new(buckets, bucket_len, seed)
    }

    /// Build the largest part with `bucket_len`-entry buckets that fits a
    /// byte budget (≥ 1 bucket).
    ///
    /// # Panics
    /// Panics if `bucket_len == 0`.
    pub fn with_memory_budget(bucket_len: usize, bytes: usize, seed: u64) -> Self {
        match Self::try_with_memory_budget(bucket_len, bytes, seed) {
            Some(part) => part,
            None => panic!("need at least one entry per bucket"),
        }
    }

    /// Number of buckets `m`.
    #[inline(always)]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Entries per bucket `b` (the "block length" of Figs. 9(b)/10(b)).
    #[inline(always)]
    pub fn bucket_len(&self) -> usize {
        self.bucket_len
    }

    /// Charged memory in bytes. Padding cells (see [`FP_PAD`]) are not
    /// charged: they exist for loadability, not capacity.
    pub fn memory_bytes(&self) -> usize {
        self.buckets * self.bucket_len * ENTRY_BYTES
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.occ.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The bucket index a key hashes to (`h_b(x)`).
    #[inline(always)]
    pub fn bucket_of<K: StreamKey + ?Sized>(&self, key: &K) -> usize {
        self.bucket_hash.index(key)
    }

    /// The key's candidate fingerprint (`h_fp(x)`).
    #[inline(always)]
    pub fn fingerprint_of<K: StreamKey + ?Sized>(&self, key: &K) -> u16 {
        fingerprint16(key, self.fp_seed)
    }

    /// Both candidate coordinates — `h_b(x)` and `h_fp(x)` — captured once
    /// per insert and carried through the whole operation, so neither hash
    /// is ever recomputed mid-insert. Fixed-width keys route through their
    /// seed-independent prehash digest, sharing one mix round between the
    /// bucket and fingerprint hashes (bit-identically — see
    /// [`StreamKey::prehash`]).
    #[inline(always)]
    pub fn coords_of<K: StreamKey + ?Sized>(&self, key: &K) -> HashedKey {
        if let Some(p) = key.prehash() {
            return self.coords_of_prehashed(p);
        }
        HashedKey {
            bucket: self.bucket_of(key),
            fp: self.fingerprint_of(key),
        }
    }

    /// [`Self::coords_of`] from a key's [`StreamKey::prehash`] digest —
    /// bit-identical for the key that produced it.
    #[inline(always)]
    pub fn coords_of_prehashed(&self, prehash: u64) -> HashedKey {
        HashedKey {
            bucket: self.bucket_hash.index_prehashed(prehash),
            fp: fingerprint16_prehashed(prehash, self.fp_seed),
        }
    }

    /// Hint-prefetch a bucket's fingerprint and Qweight lines ahead of
    /// [`Self::offer`] — used by the batch ingest path, which hashes a whole
    /// chunk before applying it. Out-of-range buckets are ignored rather
    /// than prefetched: the chunked pipeline prefetches one item ahead, and
    /// at the batch tail the "next" coordinates can be one past the live
    /// range — a hint pointing past the allocation is architecturally
    /// harmless but is a bounds bug waiting for a non-hint rewrite, so it is
    /// guarded here.
    #[inline(always)]
    pub fn prefetch(&self, bucket: usize) {
        if bucket >= self.buckets {
            return;
        }
        let start = bucket * self.bucket_len;
        qf_sketch::prefetch_read(self.fps.as_ptr().wrapping_add(start));
        qf_sketch::prefetch_read(self.qws.as_ptr().wrapping_add(start));
        qf_sketch::prefetch_read(self.occ.as_ptr().wrapping_add(bucket * self.occ_words));
    }

    #[inline(always)]
    fn occupied(&self, bucket: usize, slot: usize) -> bool {
        self.occ[bucket * self.occ_words + slot / 64] >> (slot % 64) & 1 == 1
    }

    #[inline(always)]
    fn set_occupied(&mut self, bucket: usize, slot: usize) {
        self.occ[bucket * self.occ_words + slot / 64] |= 1u64 << (slot % 64);
    }

    #[inline(always)]
    fn clear_occupied(&mut self, bucket: usize, slot: usize) {
        self.occ[bucket * self.occ_words + slot / 64] &= !(1u64 << (slot % 64));
    }

    /// Bit `i` set ⇔ slot `i` exists in a bucket. Only meaningful for
    /// single-word buckets (`bucket_len ≤ 64`).
    #[inline(always)]
    fn bucket_mask(&self) -> u64 {
        if self.bucket_len == 64 {
            u64::MAX
        } else {
            (1u64 << self.bucket_len) - 1
        }
    }

    /// Match bits of `fp` over `bucket`'s slots (single-word buckets only):
    /// bit `i` set ⇔ slot `i` is an occupied entry with fingerprint `fp`.
    ///
    /// This is the SWAR hot probe. Thanks to [`FP_PAD`] the window
    /// `[start, start + bucket_len.next_multiple_of(4))` is always in
    /// bounds, so the scan is whole packed words — no scalar remainder —
    /// and the bucket mask strips both the padding lanes and any
    /// cross-bucket lanes the rounded window covers. Free slots keep a
    /// zeroed fingerprint (see `remove`/`clear`), so a *nonzero* probe can
    /// never false-match a free slot and the occupancy word is not read at
    /// all on that path; only the rare `fp == 0` probe — where a freed
    /// slot is payload-indistinguishable from a live `⟨0, 0⟩` entry —
    /// pays the occupancy mask.
    #[inline(always)]
    fn match_bits(&self, bucket: usize, fp: u16) -> u64 {
        let start = bucket * self.bucket_len;
        let probe4 = broadcast4(fp);
        let padded = self.bucket_len.next_multiple_of(LANES_PER_WORD);
        let window = &self.fps[start..start + padded];
        let mut match_bits: u64 = 0;
        let mut base = 0u32;
        for chunk in window.chunks_exact(LANES_PER_WORD) {
            let word = pack4([chunk[0], chunk[1], chunk[2], chunk[3]]);
            match_bits |= u64::from(movemask4(eq_lanes4(word, probe4))) << base;
            base += LANES_PER_WORD as u32;
        }
        match_bits &= self.bucket_mask();
        if fp == 0 {
            match_bits &= self.occ[bucket];
        }
        match_bits
    }

    /// [`Self::find_slot`] fast path for nonzero probes: free slots keep a
    /// zeroed fingerprint, so no occupancy masking is needed and the scan
    /// can exit at the first packed word holding a match — one branch per
    /// four slots, and a hot key whose entry sits in the bucket's first
    /// word resolves in a single load-compare. The lane's slot index falls
    /// out of `trailing_zeros` of the per-lane high-bit mask directly
    /// (bit `16i + 15` ⇔ lane `i`), with no movemask compression.
    #[inline(always)]
    fn find_slot_nonzero(&self, bucket: usize, fp: u16) -> Option<usize> {
        debug_assert!(fp != 0 && self.occ_words == 1);
        const LANE_HI: u64 = 0x8000_8000_8000_8000;
        let start = bucket * self.bucket_len;
        let probe4 = broadcast4(fp);
        // Lanes of the final word past bucket_len are padding or the next
        // bucket's slots; strip them before the match test.
        let tail_mask = LANE_HI >> (16 * (self.bucket_len.wrapping_neg() & (LANES_PER_WORD - 1)));
        let padded = self.bucket_len.next_multiple_of(LANES_PER_WORD);
        let window = &self.fps[start..start + padded];
        // Paper-shaped buckets (b in 5..=8, default 6) take this fully
        // unrolled two-word probe: the array pattern pins the window length
        // at compile time, so each packed word is a straight 8-byte load
        // with no loop counter, no per-word bounds logic, and at most two
        // branches — the shape that lets a hot key's first-word hit resolve
        // in a handful of cycles.
        if let Ok(w) = <&[u16; 2 * LANES_PER_WORD]>::try_from(window) {
            let m0 = eq_lanes4(pack4([w[0], w[1], w[2], w[3]]), probe4);
            if m0 != 0 {
                return Some((m0.trailing_zeros() >> 4) as usize);
            }
            let m1 = eq_lanes4(pack4([w[4], w[5], w[6], w[7]]), probe4) & tail_mask;
            if m1 != 0 {
                return Some(LANES_PER_WORD + (m1.trailing_zeros() >> 4) as usize);
            }
            return None;
        }
        let words = padded / LANES_PER_WORD;
        let mut base = 0usize;
        for (w, chunk) in window.chunks_exact(LANES_PER_WORD).enumerate() {
            let word = pack4([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let mut m = eq_lanes4(word, probe4);
            if w + 1 == words {
                m &= tail_mask;
            }
            if m != 0 {
                return Some(base + (m.trailing_zeros() >> 4) as usize);
            }
            base += LANES_PER_WORD;
        }
        None
    }

    /// Slot index of `fp` among `bucket`'s occupied entries, or `None`.
    ///
    /// Single-word buckets (`b ≤ 64`, every paper configuration) run the
    /// SWAR probes ([`Self::find_slot_nonzero`] for the common nonzero
    /// fingerprint, [`Self::match_bits`] with occupancy masking for the
    /// 1-in-2¹⁶ zero fingerprint). The returned index is the *lowest*
    /// matching slot, preserving the slot-order semantics of the scalar walk
    /// (duplicates cannot exist — see `check_invariants` — so this only
    /// matters for defence in depth).
    #[inline]
    fn find_slot(&self, bucket: usize, fp: u16) -> Option<usize> {
        if self.occ_words == 1 {
            if fp != 0 {
                return self.find_slot_nonzero(bucket, fp);
            }
            let bits = self.match_bits(bucket, fp);
            if bits == 0 {
                return None;
            }
            return Some(bits.trailing_zeros() as usize);
        }
        let start = bucket * self.bucket_len;
        (0..self.bucket_len).find(|&i| self.occupied(bucket, i) && self.fps[start + i] == fp)
    }

    #[inline(always)]
    fn clamp_qw(v: i64) -> i32 {
        v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
    }

    /// Offer an item with integer weight `delta`. Implements steps 4–8 of
    /// Algorithm 2: match-and-update, or fill-a-hole, or report bucket-full.
    ///
    /// Deliberately a plain scalar walk: this is the entry point the A/B
    /// legacy baseline reconstructs the pre-fusion flow from, so it must not
    /// silently inherit the SWAR scan (see [`Self::offer_or_min`] for the
    /// vectorized hot path).
    pub fn offer(&mut self, bucket: usize, fp: u16, delta: i64) -> CandidateOutcome {
        let start = bucket * self.bucket_len;
        let mut free: Option<usize> = None;
        for i in 0..self.bucket_len {
            if self.occupied(bucket, i) {
                if self.fps[start + i] == fp {
                    let widened = i64::from(self.qws[start + i]).saturating_add(delta);
                    self.qws[start + i] = Self::clamp_qw(widened);
                    return CandidateOutcome::Updated {
                        qweight: i64::from(self.qws[start + i]),
                    };
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            self.fps[start + i] = fp;
            self.qws[start + i] = Self::clamp_qw(delta);
            self.set_occupied(bucket, i);
            return CandidateOutcome::Inserted;
        }
        CandidateOutcome::BucketFull
    }

    /// One-pass variant of [`Self::offer`]: resolves the bucket in one scan
    /// and, when it is full with no fingerprint match, returns the minimum
    /// entry found during that same scan — the election (Algorithm 2 lines
    /// 14–17) then needs no second walk of the bucket. The tie-break matches
    /// [`Self::min_entry`] exactly: the first minimal entry in slot order.
    ///
    /// On single-word buckets this is the SWAR hot path: one packed compare
    /// per four fingerprints decides match-vs-miss, `trailing_zeros` of the
    /// inverted occupancy word elects the first free slot, and only a full
    /// bucket pays the (branch-light, conditional-move) min scan. Outcomes
    /// and mutations are bit-identical to the scalar walk.
    ///
    /// [`Self::offer`] is kept separately (rather than wrapping this) so
    /// callers that never elect — and A/B baselines reconstructing the
    /// pre-fusion flow — don't pay for the min tracking.
    #[inline]
    pub fn offer_or_min(&mut self, bucket: usize, fp: u16, delta: i64) -> OfferOutcome {
        let start = bucket * self.bucket_len;
        if self.occ_words == 1 {
            if let Some(i) = self.find_slot(bucket, fp) {
                // The dominant outcome on skewed streams: a hot key revisits
                // its own entry. One fps line scanned (usually one packed
                // word), one qws cell updated through a single bounds check,
                // occupancy untouched.
                let cell = &mut self.qws[start + i];
                let updated = Self::clamp_qw(i64::from(*cell).saturating_add(delta));
                *cell = updated;
                return OfferOutcome::Updated {
                    qweight: i64::from(updated),
                };
            }
            let holes = !self.occ[bucket] & self.bucket_mask();
            if holes != 0 {
                let i = holes.trailing_zeros() as usize;
                self.fps[start + i] = fp;
                self.qws[start + i] = Self::clamp_qw(delta);
                self.set_occupied(bucket, i);
                return OfferOutcome::Inserted;
            }
            // Full bucket, no match: first-minimal election in slot order.
            let b = self.bucket_len;
            if b > LANES_PER_WORD && b <= 2 * LANES_PER_WORD {
                // Paper-shaped buckets (4 < b ≤ 8, default 6) elect over a
                // fixed eight-lane window so the reduction is a three-deep
                // min tree instead of a serial compare-and-select chain.
                // Lanes past bucket_len (the next bucket's slots, or the
                // saturated tail padding) are forced to i32::MAX, which a
                // strict minimum over a full bucket can never prefer; the
                // first-minimal index then drops out of an equality bitmask
                // restricted to live lanes — matching min_entry's tie-break
                // with no data-dependent branch. The window is loadable for
                // every bucket because qws carries FP_PAD saturated cells.
                if let Ok(w) = <&[i32; 2 * LANES_PER_WORD]>::try_from(
                    &self.qws[start..start + 2 * LANES_PER_WORD],
                ) {
                    let q5 = if b > 5 { w[5] } else { i32::MAX };
                    let q6 = if b > 6 { w[6] } else { i32::MAX };
                    let q7 = if b > 7 { w[7] } else { i32::MAX };
                    let min_qw = w[0]
                        .min(w[1])
                        .min(w[2].min(w[3]))
                        .min(w[4].min(q5).min(q6.min(q7)));
                    let eqmask = (u32::from(w[0] == min_qw)
                        | u32::from(w[1] == min_qw) << 1
                        | u32::from(w[2] == min_qw) << 2
                        | u32::from(w[3] == min_qw) << 3
                        | u32::from(w[4] == min_qw) << 4
                        | u32::from(q5 == min_qw) << 5
                        | u32::from(q6 == min_qw) << 6
                        | u32::from(q7 == min_qw) << 7)
                        & ((1u32 << b) - 1);
                    let min_i = eqmask.trailing_zeros() as usize;
                    return OfferOutcome::BucketFull {
                        min_fp: self.fps[start + min_i],
                        min_qw: i64::from(min_qw),
                    };
                }
            }
            // Other widths: strict `<` keeps the first minimal entry, like
            // min_entry's min_by_key; the loop body is two compares and two
            // selects, so it lowers to conditional moves rather than a
            // branchy walk.
            let qws = &self.qws[start..start + self.bucket_len];
            let mut min_i = 0usize;
            let mut min_qw = qws[0];
            for (i, &v) in qws.iter().enumerate().skip(1) {
                if v < min_qw {
                    min_qw = v;
                    min_i = i;
                }
            }
            return OfferOutcome::BucketFull {
                min_fp: self.fps[start + min_i],
                min_qw: i64::from(min_qw),
            };
        }
        self.offer_or_min_scalar(bucket, fp, delta)
    }

    /// Scalar fallback of [`Self::offer_or_min`] for multi-word buckets
    /// (`b > 64` — diagnostic sweeps only; every paper configuration fits
    /// one occupancy word).
    fn offer_or_min_scalar(&mut self, bucket: usize, fp: u16, delta: i64) -> OfferOutcome {
        let start = bucket * self.bucket_len;
        let mut free: Option<usize> = None;
        let mut min: Option<(u16, i32)> = None;
        for i in 0..self.bucket_len {
            if self.occupied(bucket, i) {
                if self.fps[start + i] == fp {
                    let widened = i64::from(self.qws[start + i]).saturating_add(delta);
                    self.qws[start + i] = Self::clamp_qw(widened);
                    return OfferOutcome::Updated {
                        qweight: i64::from(self.qws[start + i]),
                    };
                }
                if min.is_none_or(|(_, qw)| self.qws[start + i] < qw) {
                    min = Some((self.fps[start + i], self.qws[start + i]));
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            self.fps[start + i] = fp;
            self.qws[start + i] = Self::clamp_qw(delta);
            self.set_occupied(bucket, i);
            return OfferOutcome::Inserted;
        }
        match min {
            Some((min_fp, min_qw)) => OfferOutcome::BucketFull {
                min_fp,
                min_qw: i64::from(min_qw),
            },
            // Unreachable: a full bucket (no free slot, bucket_len ≥ 1) has
            // at least one occupied entry. An i64::MAX minimum makes every
            // election a no-op rather than panicking.
            None => OfferOutcome::BucketFull {
                min_fp: fp,
                min_qw: i64::MAX,
            },
        }
    }

    /// Read a key's Qweight if its fingerprint is present in `bucket`.
    pub fn get(&self, bucket: usize, fp: u16) -> Option<i64> {
        self.find_slot(bucket, fp)
            .map(|i| i64::from(self.qws[bucket * self.bucket_len + i]))
    }

    /// Zero a present entry's Qweight (the post-report reset). Returns the
    /// previous Qweight.
    pub fn reset_entry(&mut self, bucket: usize, fp: u16) -> Option<i64> {
        self.find_slot(bucket, fp).map(|i| {
            let idx = bucket * self.bucket_len + i;
            let old = i64::from(self.qws[idx]);
            self.qws[idx] = 0;
            old
        })
    }

    /// Remove a present entry entirely (the §III-C delete operation).
    /// Returns the removed Qweight.
    pub fn remove(&mut self, bucket: usize, fp: u16) -> Option<i64> {
        self.find_slot(bucket, fp).map(|i| {
            let idx = bucket * self.bucket_len + i;
            let old = i64::from(self.qws[idx]);
            // Free slots stay fully zeroed: the snapshot wire format and the
            // invariant checker both rely on it.
            self.fps[idx] = 0;
            self.qws[idx] = 0;
            self.clear_occupied(bucket, i);
            old
        })
    }

    /// The entry with the smallest Qweight in `bucket` (`⟨fp′, MinQw⟩` of
    /// Algorithm 2 line 14). `None` only if the bucket is somehow empty.
    pub fn min_entry(&self, bucket: usize) -> Option<(u16, i64)> {
        let start = bucket * self.bucket_len;
        (0..self.bucket_len)
            .filter(|&i| self.occupied(bucket, i))
            .min_by_key(|&i| self.qws[start + i])
            .map(|i| (self.fps[start + i], i64::from(self.qws[start + i])))
    }

    /// Replace the entry `old_fp` in `bucket` with `⟨new_fp, new_qw⟩`
    /// (the candidate⇄vague exchange). Returns the evicted Qweight.
    pub fn replace(&mut self, bucket: usize, old_fp: u16, new_fp: u16, new_qw: i64) -> Option<i64> {
        self.find_slot(bucket, old_fp).map(|i| {
            let idx = bucket * self.bucket_len + i;
            crate::telemetry::eviction();
            crate::trace::eviction(self.fps[idx], i64::from(self.qws[idx]));
            let old = i64::from(self.qws[idx]);
            self.fps[idx] = new_fp;
            self.qws[idx] = Self::clamp_qw(new_qw);
            old
        })
    }

    /// Clear every entry (the periodic reset of §III-B). Padding cells are
    /// left untouched: fp padding is already zero and qw padding must stay
    /// saturated (see [`QW_PAD_VALUE`]).
    pub fn clear(&mut self) {
        let slots = self.buckets * self.bucket_len;
        self.fps[..slots].fill(0);
        self.qws[..slots].fill(0);
        self.occ.fill(0);
    }

    /// Iterate over `(bucket, fp, qweight)` of all occupied entries —
    /// used by diagnostics and the eval harness.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, u16, i64)> + '_ {
        (0..self.buckets * self.bucket_len).filter_map(move |i| {
            let (bucket, slot) = (i / self.bucket_len, i % self.bucket_len);
            self.occupied(bucket, slot)
                .then_some((bucket, self.fps[i], i64::from(self.qws[i])))
        })
    }

    /// The bucket hash's seed, for snapshotting.
    pub fn bucket_seed(&self) -> u64 {
        self.bucket_hash.seed()
    }

    /// The fingerprint hash seed, for snapshotting.
    pub fn fp_seed(&self) -> u64 {
        self.fp_seed
    }

    /// Upper bound on restored slot counts; a corrupted dimension field
    /// must not trigger a huge allocation.
    pub(crate) const MAX_SNAPSHOT_SLOTS: u64 = 1 << 28;

    /// Serialize every slot (occupied flag, fingerprint, Qweight) into a
    /// snapshot's state section. The per-slot record order is the AoS wire
    /// format — unchanged by the SoA layout.
    pub(crate) fn write_state(&self, w: &mut ByteWriter) {
        for i in 0..self.buckets * self.bucket_len {
            let (bucket, slot) = (i / self.bucket_len, i % self.bucket_len);
            w.put_u8(u8::from(self.occupied(bucket, slot)));
            w.put_u16(self.fps[i]);
            w.put_i32(self.qws[i]);
        }
    }

    /// Rebuild the part from snapshotted configuration and slot state.
    /// Never panics: malformed input surfaces as a [`WireError`].
    pub(crate) fn from_state(
        buckets: u64,
        bucket_len: u64,
        bucket_seed: u64,
        fp_seed: u64,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, WireError> {
        if buckets == 0 || bucket_len == 0 {
            return Err(WireError::Invalid("candidate dimensions must be positive"));
        }
        let total = buckets
            .checked_mul(bucket_len)
            .ok_or(WireError::Invalid("candidate dimensions overflow"))?;
        if total > Self::MAX_SNAPSHOT_SLOTS {
            return Err(WireError::Invalid("candidate dimensions out of range"));
        }
        let (buckets, bucket_len) = (buckets as usize, bucket_len as usize);
        let bucket_hash = RowHasher::from_parts(buckets, bucket_seed)
            .ok_or(WireError::Invalid("degenerate bucket hash"))?;
        let occ_words = bucket_len.div_ceil(64);
        let mut part = Self {
            fps: Vec::with_capacity(buckets * bucket_len + FP_PAD),
            qws: Vec::with_capacity(buckets * bucket_len + FP_PAD),
            occ: vec![0; buckets * occ_words],
            buckets,
            bucket_len,
            occ_words,
            bucket_hash,
            fp_seed,
        };
        for i in 0..buckets * bucket_len {
            let occupied = match r.get_u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Invalid("bad slot occupancy flag")),
            };
            let fp = r.get_u16()?;
            let qw = r.get_i32()?;
            if !occupied && (fp != 0 || qw != 0) {
                return Err(WireError::Invalid("free slot with residual payload"));
            }
            part.fps.push(fp);
            part.qws.push(qw);
            if occupied {
                part.set_occupied(i / bucket_len, i % bucket_len);
            }
        }
        part.fps.resize(buckets * bucket_len + FP_PAD, 0);
        part.qws.resize(buckets * bucket_len + FP_PAD, QW_PAD_VALUE);
        Ok(part)
    }
}

impl qf_sketch::invariants::CheckInvariants for CandidatePart {
    fn check_invariants(&self) -> Result<(), qf_sketch::invariants::InvariantViolation> {
        use qf_sketch::invariants::InvariantViolation as V;
        const S: &str = "CandidatePart";
        if self.buckets == 0 || self.bucket_len == 0 {
            return Err(V::new(S, "dimensions must be positive"));
        }
        let slots = self.buckets * self.bucket_len;
        if self.qws.len() != slots + FP_PAD || self.fps.len() != slots + FP_PAD {
            return Err(V::new(
                S,
                format!(
                    "{}/{} payload slots for {}x{} dims (+{FP_PAD} pad)",
                    self.fps.len(),
                    self.qws.len(),
                    self.buckets,
                    self.bucket_len
                ),
            ));
        }
        if self.fps[slots..].iter().any(|&f| f != 0) {
            // The SWAR probe windows read the padding; a nonzero padding
            // cell could false-match the last bucket's probes.
            return Err(V::new(S, "fingerprint padding has residue"));
        }
        if self.qws[slots..].iter().any(|&q| q != QW_PAD_VALUE) {
            // The fixed-window election reads the padding; a non-saturated
            // cell could win the last bucket's minimum.
            return Err(V::new(S, "qweight padding is not saturated"));
        }
        if self.occ_words != self.bucket_len.div_ceil(64)
            || self.occ.len() != self.buckets * self.occ_words
        {
            return Err(V::new(
                S,
                format!(
                    "{} occupancy words for {} buckets of {} slots",
                    self.occ.len(),
                    self.buckets,
                    self.bucket_len
                ),
            ));
        }
        if self.bucket_hash.range() != self.buckets {
            return Err(V::new(
                S,
                format!(
                    "bucket hash maps to {} buckets, array has {}",
                    self.bucket_hash.range(),
                    self.buckets
                ),
            ));
        }
        for b in 0..self.buckets {
            // Bits past bucket_len in the bucket's occupancy group must be
            // zero, or occupancy() overcounts and the SWAR hole election
            // could install entries in slots that don't exist.
            for (w, &word) in self.occ[b * self.occ_words..(b + 1) * self.occ_words]
                .iter()
                .enumerate()
            {
                let bits_before = w * 64;
                let live = self.bucket_len.saturating_sub(bits_before).min(64);
                let live_mask = if live == 64 {
                    u64::MAX
                } else {
                    (1u64 << live) - 1
                };
                if word & !live_mask != 0 {
                    return Err(V::new(
                        S,
                        format!("bucket {b} occupancy word {w} has ghost bits"),
                    ));
                }
            }
            let start = b * self.bucket_len;
            let mut seen = [false; u16::MAX as usize + 1];
            for i in 0..self.bucket_len {
                if self.occupied(b, i) {
                    // offer() never duplicates a fingerprint and replace()
                    // only installs challengers absent from the bucket, so
                    // a duplicate means an update went to the wrong entry.
                    let fp = self.fps[start + i];
                    if seen[usize::from(fp)] {
                        return Err(V::new(
                            S,
                            format!("bucket {b} holds fingerprint {fp:#06x} twice"),
                        ));
                    }
                    seen[usize::from(fp)] = true;
                } else if self.fps[start + i] != 0 || self.qws[start + i] != 0 {
                    // Free slots are always fully zeroed; residue means a
                    // remove/clear path missed a field.
                    return Err(V::new(S, format!("free slot in bucket {b} has residue")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> CandidatePart {
        CandidatePart::new(4, 3, 42)
    }

    #[test]
    fn insert_then_update() {
        let mut p = part();
        let b = p.bucket_of(&1u64);
        let fp = p.fingerprint_of(&1u64);
        assert_eq!(p.offer(b, fp, 5), CandidateOutcome::Inserted);
        assert_eq!(p.offer(b, fp, -2), CandidateOutcome::Updated { qweight: 3 });
        assert_eq!(p.get(b, fp), Some(3));
    }

    #[test]
    fn bucket_fills_then_rejects() {
        let mut p = CandidatePart::new(1, 2, 1);
        assert_eq!(p.offer(0, 10, 1), CandidateOutcome::Inserted);
        assert_eq!(p.offer(0, 20, 1), CandidateOutcome::Inserted);
        assert_eq!(p.offer(0, 30, 1), CandidateOutcome::BucketFull);
        // But a matching fp still updates.
        assert_eq!(p.offer(0, 20, 4), CandidateOutcome::Updated { qweight: 5 });
    }

    #[test]
    fn min_entry_finds_smallest() {
        let mut p = CandidatePart::new(1, 3, 2);
        p.offer(0, 1, 10);
        p.offer(0, 2, -5);
        p.offer(0, 3, 7);
        assert_eq!(p.min_entry(0), Some((2, -5)));
    }

    #[test]
    fn offer_or_min_reports_first_minimal_entry() {
        let mut p = CandidatePart::new(1, 4, 2);
        p.offer(0, 1, 7);
        p.offer(0, 2, -5);
        p.offer(0, 3, -5); // Tie with fp 2; fp 2 is first in slot order.
        p.offer(0, 4, 10);
        assert_eq!(
            p.offer_or_min(0, 99, 1),
            OfferOutcome::BucketFull {
                min_fp: 2,
                min_qw: -5
            }
        );
        // The carried minimum must agree with the two-scan answer.
        assert_eq!(p.min_entry(0), Some((2, -5)));
    }

    #[test]
    fn offer_or_min_matches_offer_on_update_and_insert() {
        let mut a = CandidatePart::new(4, 3, 42);
        let mut b = CandidatePart::new(4, 3, 42);
        for k in 0u64..200 {
            let bucket = a.bucket_of(&k);
            let fp = a.fingerprint_of(&k);
            let delta = (k as i64 % 13) - 6;
            let via_offer = a.offer(bucket, fp, delta);
            let via_fused = b.offer_or_min(bucket, fp, delta);
            match (via_offer, via_fused) {
                (
                    CandidateOutcome::Updated { qweight: x },
                    OfferOutcome::Updated { qweight: y },
                ) => {
                    assert_eq!(x, y)
                }
                (CandidateOutcome::Inserted, OfferOutcome::Inserted) => {}
                (CandidateOutcome::BucketFull, OfferOutcome::BucketFull { min_fp, min_qw }) => {
                    assert_eq!(a.min_entry(bucket), Some((min_fp, min_qw)));
                }
                (x, y) => panic!("diverged on key {k}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn swar_and_scalar_offer_agree_across_bucket_lengths() {
        // The SWAR single-word path and the scalar multi-word path must make
        // identical decisions for every bucket length around the 4-lane
        // boundaries and across the 64-slot word boundary. The scalar
        // `offer` is the reference; `offer_or_min` takes the SWAR path
        // whenever bucket_len ≤ 64.
        for bucket_len in [1usize, 2, 3, 4, 5, 6, 7, 8, 63, 64, 65, 128] {
            let mut swar = CandidatePart::new(2, bucket_len, 77);
            let mut scalar = CandidatePart::new(2, bucket_len, 77);
            for k in 0u64..600 {
                let bucket = swar.bucket_of(&k);
                let fp = swar.fingerprint_of(&k);
                let delta = (k as i64 % 17) - 8;
                let via_fused = swar.offer_or_min(bucket, fp, delta);
                let via_offer = scalar.offer(bucket, fp, delta);
                match (via_offer, via_fused) {
                    (
                        CandidateOutcome::Updated { qweight: x },
                        OfferOutcome::Updated { qweight: y },
                    ) => assert_eq!(x, y, "len {bucket_len} key {k}"),
                    (CandidateOutcome::Inserted, OfferOutcome::Inserted) => {}
                    (CandidateOutcome::BucketFull, OfferOutcome::BucketFull { min_fp, min_qw }) => {
                        assert_eq!(
                            scalar.min_entry(bucket),
                            Some((min_fp, min_qw)),
                            "len {bucket_len} key {k}"
                        );
                    }
                    (x, y) => panic!("len {bucket_len} key {k}: {x:?} vs {y:?}"),
                }
                assert_eq!(
                    swar.get(bucket, fp),
                    scalar.get(bucket, fp),
                    "len {bucket_len} key {k}"
                );
            }
            assert_eq!(swar.occupancy(), scalar.occupancy(), "len {bucket_len}");
            let a: Vec<_> = swar.iter_entries().collect();
            let b: Vec<_> = scalar.iter_entries().collect();
            assert_eq!(a, b, "len {bucket_len}");
        }
    }

    #[test]
    fn fixed_window_election_ignores_neighbour_bucket() {
        // The eight-lane election window of a 6-slot bucket reaches two
        // lanes into the next bucket. Plant strictly smaller Qweights
        // there: the election must still pick this bucket's own minimum.
        let mut p = CandidatePart::new(3, 6, 9);
        for fp in 1..=6u16 {
            p.offer(0, fp, 100 + i64::from(fp));
        }
        p.offer(1, 50, -1000);
        p.offer(1, 51, -999);
        assert_eq!(
            p.offer_or_min(0, 999, 1),
            OfferOutcome::BucketFull {
                min_fp: 1,
                min_qw: 101
            }
        );
    }

    #[test]
    fn all_saturated_bucket_elects_first_live_slot() {
        // Every live Qweight at i32::MAX ties the saturated padding lanes;
        // the election mask must keep the winner inside the bucket. Use the
        // LAST bucket so the window reads the actual tail padding.
        let mut p = CandidatePart::new(2, 6, 9);
        let last = p.buckets() - 1;
        for fp in 1..=6u16 {
            p.offer(last, fp, i64::from(i32::MAX));
        }
        assert_eq!(
            p.offer_or_min(last, 999, 1),
            OfferOutcome::BucketFull {
                min_fp: 1,
                min_qw: i64::from(i32::MAX)
            }
        );
        // The padding itself must stay pristine through it all.
        use qf_sketch::invariants::CheckInvariants;
        p.check_invariants().expect("padding must stay saturated");
    }

    #[test]
    fn clear_preserves_padding_discipline() {
        let mut p = CandidatePart::new(2, 6, 11);
        for fp in 1..=6u16 {
            p.offer(0, fp, 7);
        }
        p.clear();
        use qf_sketch::invariants::CheckInvariants;
        p.check_invariants()
            .expect("clear must leave fp padding zero and qw padding saturated");
        assert_eq!(p.occupancy(), 0);
        assert_eq!(p.iter_entries().count(), 0);
    }

    #[test]
    fn zero_fingerprint_zero_qweight_is_a_real_entry() {
        // ⟨fp 0, qw 0⟩ is indistinguishable from a freed slot in the payload
        // arrays — only the occupancy mask separates them. The SWAR probe
        // must find the occupied zero entry and must NOT match freed slots.
        let mut p = CandidatePart::new(1, 4, 3);
        assert_eq!(p.get(0, 0), None);
        assert_eq!(p.offer(0, 0, 0), CandidateOutcome::Inserted);
        assert_eq!(p.get(0, 0), Some(0));
        assert_eq!(p.remove(0, 0), Some(0));
        assert_eq!(p.get(0, 0), None);
        assert_eq!(
            p.offer_or_min(0, 0, 0),
            OfferOutcome::Inserted,
            "freed slot must not false-match a zero probe"
        );
        assert_eq!(p.get(0, 0), Some(0));
    }

    #[test]
    fn replace_swaps_entry() {
        let mut p = CandidatePart::new(1, 2, 3);
        p.offer(0, 1, -2);
        p.offer(0, 2, 8);
        let evicted = p.replace(0, 1, 99, 11);
        assert_eq!(evicted, Some(-2));
        assert_eq!(p.get(0, 99), Some(11));
        assert_eq!(p.get(0, 1), None);
    }

    #[test]
    fn reset_zeroes_but_keeps_entry() {
        let mut p = part();
        let b = p.bucket_of(&5u64);
        let fp = p.fingerprint_of(&5u64);
        p.offer(b, fp, 50);
        assert_eq!(p.reset_entry(b, fp), Some(50));
        assert_eq!(p.get(b, fp), Some(0));
    }

    #[test]
    fn remove_frees_slot() {
        let mut p = CandidatePart::new(1, 1, 4);
        p.offer(0, 7, 3);
        assert_eq!(p.remove(0, 7), Some(3));
        assert_eq!(p.get(0, 7), None);
        // Slot is reusable.
        assert_eq!(p.offer(0, 8, 1), CandidateOutcome::Inserted);
    }

    #[test]
    fn memory_accounting_six_bytes_per_entry() {
        let p = CandidatePart::new(10, 6, 5);
        assert_eq!(p.memory_bytes(), 10 * 6 * ENTRY_BYTES);
        let p = CandidatePart::with_memory_budget(6, 3600, 5);
        assert!(p.memory_bytes() <= 3600);
        assert_eq!(p.buckets(), 100);
    }

    #[test]
    fn qweight_saturates_at_i32() {
        let mut p = CandidatePart::new(1, 1, 6);
        p.offer(0, 1, i64::from(i32::MAX) - 1);
        let out = p.offer(0, 1, 100);
        assert_eq!(
            out,
            CandidateOutcome::Updated {
                qweight: i64::from(i32::MAX)
            }
        );
    }

    #[test]
    fn occupancy_and_iter() {
        let mut p = CandidatePart::new(2, 2, 7);
        p.offer(0, 1, 1);
        p.offer(1, 2, 2);
        assert_eq!(p.occupancy(), 2);
        let entries: Vec<_> = p.iter_entries().collect();
        assert_eq!(entries.len(), 2);
        p.clear();
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn buckets_distribute_keys() {
        let p = CandidatePart::new(64, 4, 8);
        let mut counts = vec![0u32; 64];
        for k in 0u64..64_000 {
            counts[p.bucket_of(&k)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 1000.0).abs() < 250.0);
        }
    }

    #[test]
    fn prefetch_tolerates_out_of_range_bucket() {
        // The batch tail prefetches the "next" item's bucket, which past the
        // last live item can be any index — including one past the bucket
        // array. The guard must turn those into no-ops.
        let p = CandidatePart::new(4, 3, 11);
        p.prefetch(0);
        p.prefetch(3);
        p.prefetch(4);
        p.prefetch(usize::MAX);
    }

    #[test]
    fn coords_of_prehashed_matches_coords_of() {
        let p = CandidatePart::new(64, 6, 0xA11CE);
        for k in 0u64..1000 {
            let pre = qf_hash::StreamKey::prehash(&k).expect("u64 keys expose a prehash");
            assert_eq!(p.coords_of_prehashed(pre), p.coords_of(&k));
            // And coords_of itself equals the split hashes.
            assert_eq!(p.coords_of(&k).bucket, p.bucket_of(&k));
            assert_eq!(p.coords_of(&k).fp, p.fingerprint_of(&k));
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_get_after_offer_roundtrips(fps in proptest::collection::vec(0u16..100, 1..20)) {
            // Within a single bucket of ample size, an offered fp is always
            // retrievable with its cumulative weight.
            let mut p = CandidatePart::new(1, 128, 9);
            let mut truth = std::collections::HashMap::new();
            for (i, &fp) in fps.iter().enumerate() {
                let w = (i as i64 % 11) - 5;
                p.offer(0, fp, w);
                *truth.entry(fp).or_insert(0i64) += w;
            }
            for (&fp, &qw) in &truth {
                proptest::prop_assert_eq!(p.get(0, fp), Some(qw));
            }
        }
    }
}
