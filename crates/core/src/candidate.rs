//! The candidate part (§III-B): `m` buckets of `b` entries, each entry a
//! `⟨fingerprint, Qweight⟩` pair tracking a likely-outstanding key exactly.
//!
//! Entries store a 16-bit fingerprint plus a 32-bit signed Qweight counter.
//! Space accounting per entry is therefore 6 bytes, which is what the
//! paper's memory axis (candidate ≈ 80% of the budget at the default 4:1
//! split) charges.

use qf_hash::wire::{ByteReader, ByteWriter, WireError};
use qf_hash::{fingerprint16, HashedKey, RowHasher, StreamKey};

/// One candidate slot. `occupied == false` slots have undefined fp/qw.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    fp: u16,
    qw: i32,
    occupied: bool,
}

/// Bytes charged per entry: 2 (fingerprint) + 4 (Qweight counter).
pub const ENTRY_BYTES: usize = 6;

/// Outcome of offering an item to the candidate part.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// The key's fingerprint matched; its Qweight is now the payload.
    Updated {
        /// Qweight after the update.
        qweight: i64,
    },
    /// The bucket had room; a fresh entry was created with the item weight.
    Inserted,
    /// Bucket full and no match: the caller must go to the vague part.
    BucketFull,
}

/// Outcome of the fused walk [`CandidatePart::offer_or_min`]. Identical to
/// [`CandidateOutcome`] except that the bucket-full case carries the
/// bucket's minimum entry, discovered during the same pass over the slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfferOutcome {
    /// The key's fingerprint matched; its Qweight is now the payload.
    Updated {
        /// Qweight after the update.
        qweight: i64,
    },
    /// The bucket had room; a fresh entry was created with the item weight.
    Inserted,
    /// Bucket full and no match: the caller must go to the vague part.
    /// `⟨min_fp, min_qw⟩` is the bucket's minimum-Qweight entry (Algorithm 2
    /// line 14), so the election needs no second scan of the bucket.
    BucketFull {
        /// Fingerprint of the minimum-Qweight entry.
        min_fp: u16,
        /// That entry's Qweight.
        min_qw: i64,
    },
}

/// The candidate array.
#[derive(Debug, Clone)]
pub struct CandidatePart {
    slots: Vec<Slot>,
    buckets: usize,
    bucket_len: usize,
    bucket_hash: RowHasher,
    fp_seed: u64,
}

impl CandidatePart {
    /// Create a part with `buckets` buckets of `bucket_len` entries, or
    /// `None` if either dimension is zero.
    pub fn try_new(buckets: usize, bucket_len: usize, seed: u64) -> Option<Self> {
        if bucket_len == 0 {
            return None;
        }
        let bucket_hash = RowHasher::from_parts(buckets, seed ^ 0xB0C4_15E5)?;
        Some(Self {
            slots: vec![Slot::default(); buckets * bucket_len],
            buckets,
            bucket_len,
            bucket_hash,
            fp_seed: seed ^ 0xF19E_12F1,
        })
    }

    /// Create a part with `buckets` buckets of `bucket_len` entries.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(buckets: usize, bucket_len: usize, seed: u64) -> Self {
        match Self::try_new(buckets, bucket_len, seed) {
            Some(part) => part,
            None if buckets == 0 => panic!("need at least one bucket"),
            None => panic!("need at least one entry per bucket"),
        }
    }

    /// Build the largest part with `bucket_len`-entry buckets that fits a
    /// byte budget (≥ 1 bucket); `None` if `bucket_len == 0`.
    pub fn try_with_memory_budget(bucket_len: usize, bytes: usize, seed: u64) -> Option<Self> {
        if bucket_len == 0 {
            return None;
        }
        let buckets = (bytes / (bucket_len * ENTRY_BYTES)).max(1);
        Self::try_new(buckets, bucket_len, seed)
    }

    /// Build the largest part with `bucket_len`-entry buckets that fits a
    /// byte budget (≥ 1 bucket).
    ///
    /// # Panics
    /// Panics if `bucket_len == 0`.
    pub fn with_memory_budget(bucket_len: usize, bytes: usize, seed: u64) -> Self {
        match Self::try_with_memory_budget(bucket_len, bytes, seed) {
            Some(part) => part,
            None => panic!("need at least one entry per bucket"),
        }
    }

    /// Number of buckets `m`.
    #[inline(always)]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Entries per bucket `b` (the "block length" of Figs. 9(b)/10(b)).
    #[inline(always)]
    pub fn bucket_len(&self) -> usize {
        self.bucket_len
    }

    /// Charged memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.slots.len() * ENTRY_BYTES
    }

    /// Number of occupied entries.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.occupied).count()
    }

    /// The bucket index a key hashes to (`h_b(x)`).
    #[inline(always)]
    pub fn bucket_of<K: StreamKey + ?Sized>(&self, key: &K) -> usize {
        self.bucket_hash.index(key)
    }

    /// The key's candidate fingerprint (`h_fp(x)`).
    #[inline(always)]
    pub fn fingerprint_of<K: StreamKey + ?Sized>(&self, key: &K) -> u16 {
        fingerprint16(key, self.fp_seed)
    }

    /// Both candidate coordinates — `h_b(x)` and `h_fp(x)` — captured once
    /// per insert and carried through the whole operation, so neither hash
    /// is ever recomputed mid-insert.
    #[inline(always)]
    pub fn coords_of<K: StreamKey + ?Sized>(&self, key: &K) -> HashedKey {
        HashedKey {
            bucket: self.bucket_of(key),
            fp: self.fingerprint_of(key),
        }
    }

    /// Hint-prefetch a bucket's slot line ahead of [`Self::offer`] — used
    /// by the batch ingest path, which hashes item `i+1` while item `i` is
    /// being applied.
    #[inline(always)]
    pub fn prefetch(&self, bucket: usize) {
        debug_assert!(bucket < self.buckets);
        qf_sketch::prefetch_read(self.slots.as_ptr().wrapping_add(bucket * self.bucket_len));
    }

    #[inline(always)]
    fn bucket_slots(&self, bucket: usize) -> &[Slot] {
        &self.slots[bucket * self.bucket_len..(bucket + 1) * self.bucket_len]
    }

    #[inline(always)]
    fn bucket_slots_mut(&mut self, bucket: usize) -> &mut [Slot] {
        &mut self.slots[bucket * self.bucket_len..(bucket + 1) * self.bucket_len]
    }

    /// Offer an item with integer weight `delta`. Implements steps 4–8 of
    /// Algorithm 2: match-and-update, or fill-a-hole, or report bucket-full.
    pub fn offer(&mut self, bucket: usize, fp: u16, delta: i64) -> CandidateOutcome {
        let mut free: Option<usize> = None;
        let slots = self.bucket_slots_mut(bucket);
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.occupied {
                if slot.fp == fp {
                    let widened = i64::from(slot.qw).saturating_add(delta);
                    slot.qw = widened.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
                    return CandidateOutcome::Updated {
                        qweight: i64::from(slot.qw),
                    };
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            slots[i] = Slot {
                fp,
                qw: delta.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32,
                occupied: true,
            };
            return CandidateOutcome::Inserted;
        }
        CandidateOutcome::BucketFull
    }

    /// One-pass variant of [`Self::offer`]: walks the bucket once and, when
    /// it is full with no fingerprint match, returns the minimum entry found
    /// during that same walk — the election (Algorithm 2 lines 14–17) then
    /// needs no second scan of the bucket. The tie-break matches
    /// [`Self::min_entry`] exactly: the first minimal entry in slot order.
    ///
    /// [`Self::offer`] is kept separately (rather than wrapping this) so
    /// callers that never elect — and A/B baselines reconstructing the
    /// pre-fusion flow — don't pay for the min tracking.
    pub fn offer_or_min(&mut self, bucket: usize, fp: u16, delta: i64) -> OfferOutcome {
        let mut free: Option<usize> = None;
        let mut min: Option<(u16, i32)> = None;
        let slots = self.bucket_slots_mut(bucket);
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.occupied {
                if slot.fp == fp {
                    let widened = i64::from(slot.qw).saturating_add(delta);
                    slot.qw = widened.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
                    return OfferOutcome::Updated {
                        qweight: i64::from(slot.qw),
                    };
                }
                // Strict `<` keeps the first minimal entry, like min_entry's
                // min_by_key.
                if min.is_none_or(|(_, qw)| slot.qw < qw) {
                    min = Some((slot.fp, slot.qw));
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            slots[i] = Slot {
                fp,
                qw: delta.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32,
                occupied: true,
            };
            return OfferOutcome::Inserted;
        }
        match min {
            Some((min_fp, min_qw)) => OfferOutcome::BucketFull {
                min_fp,
                min_qw: i64::from(min_qw),
            },
            // Unreachable: a full bucket (no free slot, bucket_len ≥ 1) has
            // at least one occupied entry. An i64::MAX minimum makes every
            // election a no-op rather than panicking.
            None => OfferOutcome::BucketFull {
                min_fp: fp,
                min_qw: i64::MAX,
            },
        }
    }

    /// Read a key's Qweight if its fingerprint is present in `bucket`.
    pub fn get(&self, bucket: usize, fp: u16) -> Option<i64> {
        self.bucket_slots(bucket)
            .iter()
            .find(|s| s.occupied && s.fp == fp)
            .map(|s| i64::from(s.qw))
    }

    /// Zero a present entry's Qweight (the post-report reset). Returns the
    /// previous Qweight.
    pub fn reset_entry(&mut self, bucket: usize, fp: u16) -> Option<i64> {
        self.bucket_slots_mut(bucket)
            .iter_mut()
            .find(|s| s.occupied && s.fp == fp)
            .map(|s| {
                let old = i64::from(s.qw);
                s.qw = 0;
                old
            })
    }

    /// Remove a present entry entirely (the §III-C delete operation).
    /// Returns the removed Qweight.
    pub fn remove(&mut self, bucket: usize, fp: u16) -> Option<i64> {
        self.bucket_slots_mut(bucket)
            .iter_mut()
            .find(|s| s.occupied && s.fp == fp)
            .map(|s| {
                let old = i64::from(s.qw);
                *s = Slot::default();
                old
            })
    }

    /// The entry with the smallest Qweight in `bucket` (`⟨fp′, MinQw⟩` of
    /// Algorithm 2 line 14). `None` only if the bucket is somehow empty.
    pub fn min_entry(&self, bucket: usize) -> Option<(u16, i64)> {
        self.bucket_slots(bucket)
            .iter()
            .filter(|s| s.occupied)
            .min_by_key(|s| s.qw)
            .map(|s| (s.fp, i64::from(s.qw)))
    }

    /// Replace the entry `old_fp` in `bucket` with `⟨new_fp, new_qw⟩`
    /// (the candidate⇄vague exchange). Returns the evicted Qweight.
    pub fn replace(&mut self, bucket: usize, old_fp: u16, new_fp: u16, new_qw: i64) -> Option<i64> {
        self.bucket_slots_mut(bucket)
            .iter_mut()
            .find(|s| s.occupied && s.fp == old_fp)
            .map(|s| {
                crate::telemetry::eviction();
                crate::trace::eviction(s.fp, i64::from(s.qw));
                let old = i64::from(s.qw);
                s.fp = new_fp;
                s.qw = new_qw.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
                old
            })
    }

    /// Clear every entry (the periodic reset of §III-B).
    pub fn clear(&mut self) {
        self.slots.fill(Slot::default());
    }

    /// Iterate over `(bucket, fp, qweight)` of all occupied entries —
    /// used by diagnostics and the eval harness.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, u16, i64)> + '_ {
        self.slots.iter().enumerate().filter_map(move |(i, s)| {
            s.occupied
                .then_some((i / self.bucket_len, s.fp, i64::from(s.qw)))
        })
    }

    /// The bucket hash's seed, for snapshotting.
    pub fn bucket_seed(&self) -> u64 {
        self.bucket_hash.seed()
    }

    /// The fingerprint hash seed, for snapshotting.
    pub fn fp_seed(&self) -> u64 {
        self.fp_seed
    }

    /// Upper bound on restored slot counts; a corrupted dimension field
    /// must not trigger a huge allocation.
    pub(crate) const MAX_SNAPSHOT_SLOTS: u64 = 1 << 28;

    /// Serialize every slot (occupied flag, fingerprint, Qweight) into a
    /// snapshot's state section.
    pub(crate) fn write_state(&self, w: &mut ByteWriter) {
        for slot in &self.slots {
            w.put_u8(u8::from(slot.occupied));
            w.put_u16(slot.fp);
            w.put_i32(slot.qw);
        }
    }

    /// Rebuild the part from snapshotted configuration and slot state.
    /// Never panics: malformed input surfaces as a [`WireError`].
    pub(crate) fn from_state(
        buckets: u64,
        bucket_len: u64,
        bucket_seed: u64,
        fp_seed: u64,
        r: &mut ByteReader<'_>,
    ) -> Result<Self, WireError> {
        if buckets == 0 || bucket_len == 0 {
            return Err(WireError::Invalid("candidate dimensions must be positive"));
        }
        let total = buckets
            .checked_mul(bucket_len)
            .ok_or(WireError::Invalid("candidate dimensions overflow"))?;
        if total > Self::MAX_SNAPSHOT_SLOTS {
            return Err(WireError::Invalid("candidate dimensions out of range"));
        }
        let (buckets, bucket_len) = (buckets as usize, bucket_len as usize);
        let bucket_hash = RowHasher::from_parts(buckets, bucket_seed)
            .ok_or(WireError::Invalid("degenerate bucket hash"))?;
        let mut slots = Vec::with_capacity(buckets * bucket_len);
        for _ in 0..buckets * bucket_len {
            let occupied = match r.get_u8()? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Invalid("bad slot occupancy flag")),
            };
            let fp = r.get_u16()?;
            let qw = r.get_i32()?;
            if !occupied && (fp != 0 || qw != 0) {
                return Err(WireError::Invalid("free slot with residual payload"));
            }
            slots.push(Slot { fp, qw, occupied });
        }
        Ok(Self {
            slots,
            buckets,
            bucket_len,
            bucket_hash,
            fp_seed,
        })
    }
}

impl qf_sketch::invariants::CheckInvariants for CandidatePart {
    fn check_invariants(&self) -> Result<(), qf_sketch::invariants::InvariantViolation> {
        use qf_sketch::invariants::InvariantViolation as V;
        const S: &str = "CandidatePart";
        if self.buckets == 0 || self.bucket_len == 0 {
            return Err(V::new(S, "dimensions must be positive"));
        }
        if self.slots.len() != self.buckets * self.bucket_len {
            return Err(V::new(
                S,
                format!(
                    "{} slots for {}x{} dims",
                    self.slots.len(),
                    self.buckets,
                    self.bucket_len
                ),
            ));
        }
        if self.bucket_hash.range() != self.buckets {
            return Err(V::new(
                S,
                format!(
                    "bucket hash maps to {} buckets, array has {}",
                    self.bucket_hash.range(),
                    self.buckets
                ),
            ));
        }
        for (b, bucket) in self.slots.chunks(self.bucket_len).enumerate() {
            let mut seen = [false; u16::MAX as usize + 1];
            for slot in bucket {
                if slot.occupied {
                    // offer() never duplicates a fingerprint and replace()
                    // only installs challengers absent from the bucket, so
                    // a duplicate means an update went to the wrong entry.
                    if seen[usize::from(slot.fp)] {
                        return Err(V::new(
                            S,
                            format!("bucket {b} holds fingerprint {:#06x} twice", slot.fp),
                        ));
                    }
                    seen[usize::from(slot.fp)] = true;
                } else if slot.fp != 0 || slot.qw != 0 {
                    // Free slots are always fully zeroed (Slot::default());
                    // residue means a remove/clear path missed a field.
                    return Err(V::new(S, format!("free slot in bucket {b} has residue")));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part() -> CandidatePart {
        CandidatePart::new(4, 3, 42)
    }

    #[test]
    fn insert_then_update() {
        let mut p = part();
        let b = p.bucket_of(&1u64);
        let fp = p.fingerprint_of(&1u64);
        assert_eq!(p.offer(b, fp, 5), CandidateOutcome::Inserted);
        assert_eq!(p.offer(b, fp, -2), CandidateOutcome::Updated { qweight: 3 });
        assert_eq!(p.get(b, fp), Some(3));
    }

    #[test]
    fn bucket_fills_then_rejects() {
        let mut p = CandidatePart::new(1, 2, 1);
        assert_eq!(p.offer(0, 10, 1), CandidateOutcome::Inserted);
        assert_eq!(p.offer(0, 20, 1), CandidateOutcome::Inserted);
        assert_eq!(p.offer(0, 30, 1), CandidateOutcome::BucketFull);
        // But a matching fp still updates.
        assert_eq!(p.offer(0, 20, 4), CandidateOutcome::Updated { qweight: 5 });
    }

    #[test]
    fn min_entry_finds_smallest() {
        let mut p = CandidatePart::new(1, 3, 2);
        p.offer(0, 1, 10);
        p.offer(0, 2, -5);
        p.offer(0, 3, 7);
        assert_eq!(p.min_entry(0), Some((2, -5)));
    }

    #[test]
    fn offer_or_min_reports_first_minimal_entry() {
        let mut p = CandidatePart::new(1, 4, 2);
        p.offer(0, 1, 7);
        p.offer(0, 2, -5);
        p.offer(0, 3, -5); // Tie with fp 2; fp 2 is first in slot order.
        p.offer(0, 4, 10);
        assert_eq!(
            p.offer_or_min(0, 99, 1),
            OfferOutcome::BucketFull {
                min_fp: 2,
                min_qw: -5
            }
        );
        // The carried minimum must agree with the two-scan answer.
        assert_eq!(p.min_entry(0), Some((2, -5)));
    }

    #[test]
    fn offer_or_min_matches_offer_on_update_and_insert() {
        let mut a = CandidatePart::new(4, 3, 42);
        let mut b = CandidatePart::new(4, 3, 42);
        for k in 0u64..200 {
            let bucket = a.bucket_of(&k);
            let fp = a.fingerprint_of(&k);
            let delta = (k as i64 % 13) - 6;
            let via_offer = a.offer(bucket, fp, delta);
            let via_fused = b.offer_or_min(bucket, fp, delta);
            match (via_offer, via_fused) {
                (
                    CandidateOutcome::Updated { qweight: x },
                    OfferOutcome::Updated { qweight: y },
                ) => {
                    assert_eq!(x, y)
                }
                (CandidateOutcome::Inserted, OfferOutcome::Inserted) => {}
                (CandidateOutcome::BucketFull, OfferOutcome::BucketFull { min_fp, min_qw }) => {
                    assert_eq!(a.min_entry(bucket), Some((min_fp, min_qw)));
                }
                (x, y) => panic!("diverged on key {k}: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn replace_swaps_entry() {
        let mut p = CandidatePart::new(1, 2, 3);
        p.offer(0, 1, -2);
        p.offer(0, 2, 8);
        let evicted = p.replace(0, 1, 99, 11);
        assert_eq!(evicted, Some(-2));
        assert_eq!(p.get(0, 99), Some(11));
        assert_eq!(p.get(0, 1), None);
    }

    #[test]
    fn reset_zeroes_but_keeps_entry() {
        let mut p = part();
        let b = p.bucket_of(&5u64);
        let fp = p.fingerprint_of(&5u64);
        p.offer(b, fp, 50);
        assert_eq!(p.reset_entry(b, fp), Some(50));
        assert_eq!(p.get(b, fp), Some(0));
    }

    #[test]
    fn remove_frees_slot() {
        let mut p = CandidatePart::new(1, 1, 4);
        p.offer(0, 7, 3);
        assert_eq!(p.remove(0, 7), Some(3));
        assert_eq!(p.get(0, 7), None);
        // Slot is reusable.
        assert_eq!(p.offer(0, 8, 1), CandidateOutcome::Inserted);
    }

    #[test]
    fn memory_accounting_six_bytes_per_entry() {
        let p = CandidatePart::new(10, 6, 5);
        assert_eq!(p.memory_bytes(), 10 * 6 * ENTRY_BYTES);
        let p = CandidatePart::with_memory_budget(6, 3600, 5);
        assert!(p.memory_bytes() <= 3600);
        assert_eq!(p.buckets(), 100);
    }

    #[test]
    fn qweight_saturates_at_i32() {
        let mut p = CandidatePart::new(1, 1, 6);
        p.offer(0, 1, i64::from(i32::MAX) - 1);
        let out = p.offer(0, 1, 100);
        assert_eq!(
            out,
            CandidateOutcome::Updated {
                qweight: i64::from(i32::MAX)
            }
        );
    }

    #[test]
    fn occupancy_and_iter() {
        let mut p = CandidatePart::new(2, 2, 7);
        p.offer(0, 1, 1);
        p.offer(1, 2, 2);
        assert_eq!(p.occupancy(), 2);
        let entries: Vec<_> = p.iter_entries().collect();
        assert_eq!(entries.len(), 2);
        p.clear();
        assert_eq!(p.occupancy(), 0);
    }

    #[test]
    fn buckets_distribute_keys() {
        let p = CandidatePart::new(64, 4, 8);
        let mut counts = vec![0u32; 64];
        for k in 0u64..64_000 {
            counts[p.bucket_of(&k)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) - 1000.0).abs() < 250.0);
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_get_after_offer_roundtrips(fps in proptest::collection::vec(0u16..100, 1..20)) {
            // Within a single bucket of ample size, an offered fp is always
            // retrievable with its cumulative weight.
            let mut p = CandidatePart::new(1, 128, 9);
            let mut truth = std::collections::HashMap::new();
            for (i, &fp) in fps.iter().enumerate() {
                let w = (i as i64 % 11) - 5;
                p.offer(0, fp, w);
                *truth.entry(fp).or_insert(0i64) += w;
            }
            for (&fp, &qw) in &truth {
                proptest::prop_assert_eq!(p.get(0, fp), Some(qw));
            }
        }
    }
}
