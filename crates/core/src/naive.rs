//! The naive dual-Csketch solution of §II-D — the strawman QuantileFilter
//! improves on, kept as a baseline.
//!
//! Two Count sketches count, per key, the items above and at-or-below `T`.
//! After every insert both are queried and the key is reported when
//! `F_b ≤ ⌊(F_a + F_b)·δ − ε⌋`; a report subtracts the current estimates
//! from both sketches — a reset that is itself error-prone under
//! collisions, one of the two weaknesses the paper calls out (the other
//! being the 3-sketch-operations-per-item cost that Qweight collapses
//! into 1).

use crate::criteria::Criteria;
use qf_hash::StreamKey;
use qf_sketch::{CountSketch, SketchCounter, WeightSketch};

/// The §II-D naive detector.
#[derive(Debug, Clone)]
pub struct NaiveDualCsketch<C: SketchCounter = i32> {
    above: CountSketch<C>,
    below: CountSketch<C>,
    criteria: Criteria,
}

impl<C: SketchCounter> NaiveDualCsketch<C> {
    /// Build with explicit dimensions for each sketch ("a pair of
    /// Csketches, which may differ in size").
    pub fn new(
        criteria: Criteria,
        rows: usize,
        width_above: usize,
        width_below: usize,
        seed: u64,
    ) -> Self {
        Self {
            above: CountSketch::new(rows, width_above, seed ^ 0xA10B_E001),
            below: CountSketch::new(rows, width_below, seed ^ 0xB310_0002),
            criteria,
        }
    }

    /// Build splitting a byte budget between the two sketches in proportion
    /// to the expected traffic: values below `T` dominate (≈95% at the
    /// paper's 5% abnormal rate), so `below` gets `below_fraction` of the
    /// budget.
    ///
    /// # Panics
    /// Panics unless `below_fraction` is in `(0, 1)`.
    pub fn with_memory_budget(
        criteria: Criteria,
        rows: usize,
        bytes: usize,
        below_fraction: f64,
        seed: u64,
    ) -> Self {
        if !(below_fraction > 0.0 && below_fraction < 1.0) {
            panic!("below_fraction must be in (0, 1)");
        }
        let below_bytes = ((bytes as f64 * below_fraction) as usize).max(rows * C::BYTES);
        let above_bytes = (bytes - below_bytes.min(bytes)).max(rows * C::BYTES);
        Self {
            above: CountSketch::with_memory_budget(rows, above_bytes, seed ^ 0xA10B_E001),
            below: CountSketch::with_memory_budget(rows, below_bytes, seed ^ 0xB310_0002),
            criteria,
        }
    }

    /// The criteria in force.
    pub fn criteria(&self) -> Criteria {
        self.criteria
    }

    /// Insert one item; returns `true` when the key is reported (and its
    /// counts reset).
    pub fn insert<K: StreamKey + ?Sized>(&mut self, key: &K, value: f64) -> bool {
        if value > self.criteria.threshold() {
            self.above.add(key, 1);
        } else {
            self.below.add(key, 1);
        }
        // Query both sketches — the extra work the Qweight technique
        // eliminates.
        let fa = self.above.estimate(key).max(0);
        let fb = self.below.estimate(key).max(0);
        let n = fa + fb;
        if n == 0 {
            return false;
        }
        let rank = (n as f64 * self.criteria.delta() - self.criteria.epsilon()).floor();
        if rank < 0.0 {
            return false;
        }
        if fb as f64 <= rank {
            // Report: reset both counts by subtracting the estimates.
            self.above.remove_estimate(key);
            self.below.remove_estimate(key);
            return true;
        }
        false
    }

    /// Current estimated (above, below) counts for a key.
    pub fn estimate<K: StreamKey + ?Sized>(&self, key: &K) -> (i64, i64) {
        (self.above.estimate(key), self.below.estimate(key))
    }

    /// Clear both sketches.
    pub fn reset(&mut self) {
        self.above.clear();
        self.below.clear();
    }

    /// Counter bytes across both sketches.
    pub fn memory_bytes(&self) -> usize {
        self.above.memory_bytes() + self.below.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn outstanding_key_reported() {
        let mut n = NaiveDualCsketch::<i64>::new(crit(), 3, 512, 512, 1);
        let mut reported = false;
        for _ in 0..100 {
            reported |= n.insert(&1u64, 500.0);
        }
        assert!(reported);
    }

    #[test]
    fn quiet_key_not_reported() {
        let mut n = NaiveDualCsketch::<i64>::new(crit(), 3, 512, 512, 2);
        for _ in 0..1000 {
            assert!(!n.insert(&2u64, 5.0));
        }
    }

    #[test]
    fn report_condition_matches_definition() {
        // δ = 0.9, ε = 5: report when F_b ≤ ⌊0.9·n − 5⌋. With only
        // above-T values, F_b = 0 and n = F_a: first report at
        // ⌊0.9·n − 5⌋ ≥ 0 ⇒ n = 6.
        let mut n = NaiveDualCsketch::<i64>::new(crit(), 3, 4096, 4096, 3);
        let mut first = None;
        for i in 1..=10 {
            if n.insert(&3u64, 500.0) && first.is_none() {
                first = Some(i);
            }
        }
        assert_eq!(first, Some(6));
    }

    #[test]
    fn reset_after_report_restarts_counting() {
        let mut n = NaiveDualCsketch::<i64>::new(crit(), 3, 4096, 4096, 4);
        let mut reports = 0;
        for _ in 0..12 {
            if n.insert(&4u64, 500.0) {
                reports += 1;
            }
        }
        // Reports at items 6 and 12.
        assert_eq!(reports, 2);
    }

    #[test]
    fn asymmetric_budget_sizes() {
        let n = NaiveDualCsketch::<i32>::with_memory_budget(crit(), 3, 120_000, 0.75, 5);
        assert!(n.memory_bytes() <= 120_000);
        // below gets about 3x the above space.
        let (_fa, _fb) = n.estimate(&1u64);
    }

    #[test]
    fn estimates_reflect_sides() {
        let mut n = NaiveDualCsketch::<i64>::new(crit(), 3, 1024, 1024, 6);
        for _ in 0..4 {
            n.insert(&5u64, 500.0);
        }
        for _ in 0..7 {
            n.insert(&5u64, 5.0);
        }
        let (fa, fb) = n.estimate(&5u64);
        assert_eq!(fa, 4);
        assert_eq!(fb, 7);
        n.reset();
        assert_eq!(n.estimate(&5u64), (0, 0));
    }
}
