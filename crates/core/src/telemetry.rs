//! Feature-gated telemetry hooks for the filter hot path.
//!
//! With the `telemetry` cargo feature **off** (the default), every function
//! here is an empty `#[inline(always)]` body and each call site compiles to
//! nothing, so the uninstrumented filter is bit-identical to the pre-telemetry
//! crate. With the feature **on**, each hook is a single uncontended relaxed
//! `fetch_add` into the process-wide [`qf_telemetry::global`] registry via
//! [`GlobalRecorder`](qf_telemetry::GlobalRecorder).
//!
//! The hooks mirror the control-flow joints of Algorithm 2:
//!
//! * ingest: [`insert`], [`dropped_non_finite`], [`rejected_non_finite`],
//!   [`query`], [`delete`];
//! * candidate part: [`candidate_hit`], [`candidate_insert`],
//!   [`bucket_full`], [`election`], [`eviction`];
//! * vague part: [`vague_add`], [`vague_remove`];
//! * reports: [`report_candidate`], [`report_vague`].
//!
//! They intentionally do **not** time anything — a per-item `Instant::now()`
//! costs more than the insert itself. Latency histograms are recorded by the
//! eval runner with sampled spans around whole inserts instead.

#[cfg(feature = "telemetry")]
mod hooks {
    use qf_telemetry::{CounterId, GlobalRecorder, Recorder};

    macro_rules! count_hooks {
        ($($(#[$doc:meta])* $name:ident => $id:ident),+ $(,)?) => {
            $(
                $(#[$doc])*
                #[inline(always)]
                pub fn $name() {
                    GlobalRecorder.count(CounterId::$id, 1);
                }
            )+
        };
    }

    count_hooks! {
        /// An item entered the insert path (finite values only).
        insert => FilterInserts,
        /// A non-finite value was silently dropped by the infallible API.
        dropped_non_finite => FilterDroppedNonFinite,
        /// A non-finite value was rejected with a typed error by the
        /// fallible API — a distinct disposition from a silent drop.
        rejected_non_finite => FilterRejectedNonFinite,
        /// A Qweight point query was served.
        query => FilterQueries,
        /// A key's Qweight was deleted (also criteria changes).
        delete => FilterDeletes,
        /// An insert matched an existing candidate entry.
        candidate_hit => CandidateHits,
        /// An insert created a fresh candidate entry.
        candidate_insert => CandidateInserts,
        /// An insert found its bucket full and fell through to the vague part.
        bucket_full => CandidateBucketFull,
        /// A candidate election ran and decided to replace the minimum entry.
        election => CandidateElections,
        /// A candidate entry was evicted into the vague part.
        eviction => CandidateEvictions,
        /// A (key, delta) pair was added to the vague sketch.
        vague_add => VagueAdds,
        /// A key's estimate was pulled out of the vague sketch.
        vague_remove => VagueRemoves,
        /// A report fired from the candidate part's exact Qweight.
        report_candidate => FilterReportsCandidate,
        /// A report fired from the vague part's estimate.
        report_vague => FilterReportsVague,
    }
}

#[cfg(not(feature = "telemetry"))]
mod hooks {
    macro_rules! noop_hooks {
        ($($name:ident),+ $(,)?) => {
            $(
                /// No-op: telemetry is compiled out.
                #[inline(always)]
                pub fn $name() {}
            )+
        };
    }

    noop_hooks! {
        insert,
        dropped_non_finite,
        rejected_non_finite,
        query,
        delete,
        candidate_hit,
        candidate_insert,
        bucket_full,
        election,
        eviction,
        vague_add,
        vague_remove,
        report_candidate,
        report_vague,
    }
}

pub(crate) use hooks::*;
