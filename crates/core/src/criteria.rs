//! The `⟨ε, δ, T⟩` filtering criteria (Definition 4) and the Qweight
//! conversion of §III-A.

/// A filtering criterion: report a key when its `(ε, δ)`-quantile of values
/// exceeds `threshold`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Criteria {
    epsilon: f64,
    delta: f64,
    threshold: f64,
}

/// Error constructing a [`Criteria`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriteriaError {
    /// `δ` must lie in `[0, 1)` (Definition 2 bounds the quantile there)
    /// and be large enough that `δ/(1−δ)` is finite.
    DeltaOutOfRange,
    /// `ε` must be non-negative and finite.
    EpsilonInvalid,
    /// `T` must be finite.
    ThresholdInvalid,
}

impl std::fmt::Display for CriteriaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DeltaOutOfRange => write!(f, "delta must be in [0, 1)"),
            Self::EpsilonInvalid => write!(f, "epsilon must be finite and >= 0"),
            Self::ThresholdInvalid => write!(f, "threshold must be finite"),
        }
    }
}

impl std::error::Error for CriteriaError {}

impl Criteria {
    /// Build a criterion `⟨ε, δ, T⟩`.
    ///
    /// `epsilon` is the rank deviation (Definition 3), `delta ∈ [0, 1)` the
    /// quantile, `threshold` the value threshold `T`.
    pub fn new(epsilon: f64, delta: f64, threshold: f64) -> Result<Self, CriteriaError> {
        if !(0.0..1.0).contains(&delta) || !delta.is_finite() {
            return Err(CriteriaError::DeltaOutOfRange);
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(CriteriaError::EpsilonInvalid);
        }
        if !threshold.is_finite() {
            return Err(CriteriaError::ThresholdInvalid);
        }
        Ok(Self {
            epsilon,
            delta,
            threshold,
        })
    }

    /// The rank deviation `ε`.
    #[inline(always)]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The quantile `δ`.
    #[inline(always)]
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The value threshold `T`.
    #[inline(always)]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Item weight for a value *above* `T`: `+δ/(1−δ)`.
    #[inline(always)]
    pub fn weight_above(&self) -> f64 {
        self.delta / (1.0 - self.delta)
    }

    /// Item weight for a value *at or below* `T`: `−1` (constant by the
    /// Qweight definition).
    #[inline(always)]
    pub fn weight_below(&self) -> f64 {
        -1.0
    }

    /// The per-item Qweight of a value under this criterion.
    #[inline(always)]
    pub fn item_weight(&self, value: f64) -> f64 {
        if value > self.threshold {
            self.weight_above()
        } else {
            -1.0
        }
    }

    /// The report threshold: `Qw(x) ≥ ε/(1−δ)` ⇔ `q_{ε,δ}(x) > T`.
    #[inline(always)]
    pub fn report_threshold(&self) -> f64 {
        self.epsilon / (1.0 - self.delta)
    }

    /// Whether an estimated Qweight triggers a report.
    #[inline(always)]
    pub fn should_report(&self, qweight: f64) -> bool {
        qweight >= self.report_threshold()
    }

    /// Returns a copy with a different `ε` (dynamic modification, §III-C /
    /// Fig. 13).
    pub fn with_epsilon(mut self, epsilon: f64) -> Result<Self, CriteriaError> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(CriteriaError::EpsilonInvalid);
        }
        self.epsilon = epsilon;
        Ok(self)
    }

    /// Returns a copy with a different `δ` (Fig. 14).
    pub fn with_delta(mut self, delta: f64) -> Result<Self, CriteriaError> {
        if !(0.0..1.0).contains(&delta) {
            return Err(CriteriaError::DeltaOutOfRange);
        }
        self.delta = delta;
        Ok(self)
    }

    /// Returns a copy with a different `T` (Fig. 15).
    pub fn with_threshold(mut self, threshold: f64) -> Result<Self, CriteriaError> {
        if !threshold.is_finite() {
            return Err(CriteriaError::ThresholdInvalid);
        }
        self.threshold = threshold;
        Ok(self)
    }
}

impl Default for Criteria {
    /// The paper's default experiment parameters: `ε = 30`, `δ = 0.95`,
    /// `T = 300` (ms, Internet dataset).
    fn default() -> Self {
        // Constructed directly (all three constants trivially satisfy the
        // `new()` validation) so the non-test path stays free of
        // unwrap/expect under the crate's panic-free lint gate.
        Self {
            epsilon: 30.0,
            delta: 0.95,
            threshold: 300.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = Criteria::default();
        assert_eq!(c.epsilon(), 30.0);
        assert_eq!(c.delta(), 0.95);
        assert_eq!(c.threshold(), 300.0);
        // δ/(1−δ) = 0.95/0.05 = 19; ε/(1−δ) = 30/0.05 = 600.
        assert!((c.weight_above() - 19.0).abs() < 1e-9);
        assert!((c.report_threshold() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn figure3_example_threshold() {
        // δ = 0.9, ε = 5 ⇒ report threshold ε/(1−δ) = 50 and +9 per
        // above-T item, matching the paper's Figure 3 walk-through.
        let c = Criteria::new(5.0, 0.9, 100.0).unwrap();
        assert!((c.report_threshold() - 50.0).abs() < 1e-9);
        assert!((c.weight_above() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn item_weight_sides() {
        let c = Criteria::new(0.0, 0.5, 3.0).unwrap();
        assert_eq!(c.item_weight(3.0), -1.0); // ties go below (v ≤ T)
        assert_eq!(c.item_weight(3.1), 1.0); // δ = 0.5 ⇒ weight 1
        assert_eq!(c.item_weight(-5.0), -1.0);
    }

    #[test]
    fn epsilon_zero_reports_at_zero_qweight() {
        let c = Criteria::new(0.0, 0.9, 10.0).unwrap();
        assert!(c.should_report(0.0));
        assert!(!c.should_report(-0.001));
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Criteria::new(1.0, 1.0, 5.0).is_err());
        assert!(Criteria::new(1.0, -0.1, 5.0).is_err());
        assert!(Criteria::new(-1.0, 0.5, 5.0).is_err());
        assert!(Criteria::new(f64::NAN, 0.5, 5.0).is_err());
        assert!(Criteria::new(1.0, 0.5, f64::INFINITY).is_err());
    }

    #[test]
    fn modification_helpers() {
        let c = Criteria::new(2.0, 0.8, 70.0).unwrap();
        assert_eq!(c.with_epsilon(4.0).unwrap().epsilon(), 4.0);
        assert_eq!(c.with_delta(0.9).unwrap().delta(), 0.9);
        assert_eq!(c.with_threshold(80.0).unwrap().threshold(), 80.0);
        assert!(c.with_delta(1.5).is_err());
        assert!(c.with_epsilon(-1.0).is_err());
        assert!(c.with_threshold(f64::NAN).is_err());
    }

    #[test]
    fn delta_zero_is_legal() {
        // δ = 0 watches the minimum; weight above = 0 — degenerate but
        // well-defined (no positive drift, only resets matter).
        let c = Criteria::new(0.0, 0.0, 1.0).unwrap();
        assert_eq!(c.weight_above(), 0.0);
        assert_eq!(c.report_threshold(), 0.0);
    }
}
