//! Typed errors for the panic-free fallible API.
//!
//! Every failure the filter can encounter on its configuration, ingest, or
//! snapshot paths is represented here, so embedders can route problems
//! (a corrupt checkpoint, a poisoned value stream, a bad config pushed at
//! runtime) into their own recovery logic instead of crashing the stream
//! processor. The panicking entry points (`build()`, `insert()`,
//! constructor `new()`s) remain available as documented wrappers for code
//! that prefers fail-fast semantics.

use crate::criteria::CriteriaError;

/// Any error the fallible QuantileFilter API can return.
#[derive(Debug, Clone, PartialEq)]
pub enum QfError {
    /// A structural parameter is invalid (zero dimension, bad fraction,
    /// missing budget, bad criteria, ...).
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// An inserted value was NaN or ±infinity. Non-finite values have no
    /// place on either side of the threshold `T`: admitting them would
    /// silently corrupt Qweight accounting (NaN compares below every `T`,
    /// +∞ above), so they are rejected at the API boundary.
    NonFiniteValue {
        /// The offending value's bit pattern, kept as `f64` for display.
        value: f64,
    },
    /// A snapshot failed integrity or structural validation.
    CorruptSnapshot {
        /// What the decoder tripped over.
        reason: String,
    },
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version recorded in the snapshot header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
}

impl std::fmt::Display for QfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::NonFiniteValue { value } => {
                write!(f, "non-finite value rejected: {value}")
            }
            Self::CorruptSnapshot { reason } => write!(f, "corrupt snapshot: {reason}"),
            Self::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
        }
    }
}

impl std::error::Error for QfError {}

impl From<CriteriaError> for QfError {
    fn from(e: CriteriaError) -> Self {
        Self::InvalidConfig {
            reason: e.to_string(),
        }
    }
}

impl From<BuilderError> for QfError {
    fn from(e: BuilderError) -> Self {
        Self::InvalidConfig {
            reason: e.to_string(),
        }
    }
}

/// Error from [`crate::QuantileFilterBuilder::try_build`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuilderError {
    /// Neither a memory budget nor explicit candidate dimensions were set.
    MissingCandidateSizing,
    /// Neither a memory budget nor explicit vague dimensions were set.
    MissingVagueSizing,
    /// `bucket_len` was zero.
    ZeroBucketLen,
    /// `vague_depth` was zero or above the sketch's maximum depth.
    BadVagueDepth,
    /// `candidate_fraction` was outside `(0, 1)`.
    BadCandidateFraction,
    /// Explicit candidate bucket count was zero.
    ZeroCandidateBuckets,
    /// Explicit vague dimensions contained a zero.
    BadVagueDims,
}

impl std::fmt::Display for BuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingCandidateSizing => {
                write!(f, "set memory_budget_bytes() or candidate_buckets()")
            }
            Self::MissingVagueSizing => write!(f, "set memory_budget_bytes() or vague_dims()"),
            Self::ZeroBucketLen => write!(f, "bucket_len must be positive"),
            Self::BadVagueDepth => write!(f, "vague_depth must be positive and within MAX_DEPTH"),
            Self::BadCandidateFraction => write!(f, "candidate_fraction must be in (0, 1)"),
            Self::ZeroCandidateBuckets => write!(f, "candidate_buckets must be positive"),
            Self::BadVagueDims => write!(f, "vague_dims must both be positive"),
        }
    }
}

impl std::error::Error for BuilderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QfError::InvalidConfig { reason: "x".into() };
        assert!(e.to_string().contains("invalid configuration"));
        let e = QfError::NonFiniteValue { value: f64::NAN };
        assert!(e.to_string().contains("non-finite"));
        let e = QfError::CorruptSnapshot {
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = QfError::VersionMismatch {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn builder_error_converts() {
        let q: QfError = BuilderError::MissingCandidateSizing.into();
        assert!(
            matches!(q, QfError::InvalidConfig { reason } if reason.contains("memory_budget_bytes"))
        );
    }

    #[test]
    fn criteria_error_converts() {
        let ce = crate::criteria::CriteriaError::DeltaOutOfRange;
        let q: QfError = ce.into();
        assert!(matches!(q, QfError::InvalidConfig { .. }));
    }
}
