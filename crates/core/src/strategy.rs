//! Candidate election strategies (Choice 1, §III-D; ablated in Fig. 12).
//!
//! When a key's vague-part estimate `Q̂w(x)` confronts the smallest Qweight
//! `MinQw` in its candidate bucket, three replacement policies exist:
//!
//! * **Comparative** (default): swap iff `Q̂w(x) > MinQw`.
//! * **Probabilistic**: swap with probability
//!   `max(Q̂w(x) / (Q̂w(x) + MinQw), 0)`.
//! * **Forceful**: always swap.
//!
//! The paper reports the choice barely moves accuracy with a Count-sketch
//! vague part, but matters with CMS — which is exactly what the Fig. 12
//! driver measures.

use qf_hash::SplitMix64;

/// Candidate-part replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ElectionStrategy {
    /// Replace iff the challenger's estimate exceeds the incumbent minimum.
    #[default]
    Comparative,
    /// Replace with probability `max(q̂/(q̂ + min), 0)`.
    Probabilistic,
    /// Always replace.
    Forceful,
}

impl ElectionStrategy {
    /// Decide whether the challenger (estimate `challenger_qw`) evicts the
    /// incumbent with the bucket-minimum Qweight `min_qw`.
    #[inline]
    pub fn should_replace(self, challenger_qw: i64, min_qw: i64, rng: &mut SplitMix64) -> bool {
        match self {
            Self::Comparative => challenger_qw > min_qw,
            Self::Probabilistic => {
                let c = challenger_qw as f64;
                let m = min_qw as f64;
                let denom = c + m;
                let p = if denom.abs() < f64::EPSILON {
                    // Degenerate c == −m: fall back to comparing directly.
                    if c > m {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    (c / denom).clamp(0.0, 1.0)
                };
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
                u < p
            }
            Self::Forceful => true,
        }
    }

    /// All strategies, for sweep drivers.
    pub const ALL: [Self; 3] = [Self::Comparative, Self::Probabilistic, Self::Forceful];

    /// Short label for experiment logs ("Comp.", "Prob.", "Force").
    pub fn label(self) -> &'static str {
        match self {
            Self::Comparative => "Comp.",
            Self::Probabilistic => "Prob.",
            Self::Forceful => "Force",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparative_is_strict_greater() {
        let mut rng = SplitMix64::new(1);
        let s = ElectionStrategy::Comparative;
        assert!(s.should_replace(5, 4, &mut rng));
        assert!(!s.should_replace(4, 4, &mut rng));
        assert!(!s.should_replace(3, 4, &mut rng));
        assert!(s.should_replace(0, -2, &mut rng));
    }

    #[test]
    fn forceful_always_true() {
        let mut rng = SplitMix64::new(2);
        let s = ElectionStrategy::Forceful;
        assert!(s.should_replace(-100, 100, &mut rng));
        assert!(s.should_replace(0, 0, &mut rng));
    }

    #[test]
    fn probabilistic_rate_matches_formula() {
        let mut rng = SplitMix64::new(3);
        let s = ElectionStrategy::Probabilistic;
        // q̂ = 3, min = 1 ⇒ p = 3/4.
        let trials = 100_000;
        let hits = (0..trials)
            .filter(|_| s.should_replace(3, 1, &mut rng))
            .count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.75).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn probabilistic_negative_challenger_never_swaps_against_positive() {
        let mut rng = SplitMix64::new(4);
        let s = ElectionStrategy::Probabilistic;
        // p = max(−2/(−2+5), 0) = 0.
        for _ in 0..1000 {
            assert!(!s.should_replace(-2, 5, &mut rng));
        }
    }

    #[test]
    fn probabilistic_degenerate_denominator() {
        let mut rng = SplitMix64::new(5);
        let s = ElectionStrategy::Probabilistic;
        // c = 3, m = −3 ⇒ denominator 0; falls back to comparative (true).
        assert!(s.should_replace(3, -3, &mut rng));
        assert!(!s.should_replace(-3, 3, &mut rng));
    }

    #[test]
    fn labels_match_figure12() {
        assert_eq!(ElectionStrategy::Comparative.label(), "Comp.");
        assert_eq!(ElectionStrategy::Probabilistic.label(), "Prob.");
        assert_eq!(ElectionStrategy::Forceful.label(), "Force");
    }

    #[test]
    fn default_is_comparative() {
        assert_eq!(ElectionStrategy::default(), ElectionStrategy::Comparative);
    }
}
