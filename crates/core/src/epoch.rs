//! Epoch management: the periodic reset of §III-B.
//!
//! "A fixed-size QuantileFilter needs to be periodically cleared. This is
//! partly due to real-time considerations, as outdated data should not be
//! included, and partly due to accuracy, as it cannot maintain precision
//! with an unlimited number of insertions. … If it is necessary to adjust
//! the size of the data structures, this can be done at this time."
//!
//! [`EpochFilter`] wraps a [`QuantileFilter`] with an item-count epoch:
//! after `epoch_len` insertions the structure resets, and an optional
//! resize policy can rebuild it at a different memory budget between
//! epochs (e.g. grow when the previous epoch saturated).

use crate::builder::QuantileFilterBuilder;
use crate::criteria::Criteria;
use crate::error::{BuilderError, QfError};
use crate::filter::{QuantileFilter, Report};
use qf_hash::StreamKey;
use qf_sketch::{CountSketch, SketchCounter};

/// Decision made between epochs by a [`ResizePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeDecision {
    /// Keep the current memory budget.
    Keep,
    /// Rebuild at a new memory budget (bytes).
    Resize(usize),
}

/// Chooses the next epoch's memory budget from the last epoch's stats.
pub trait ResizePolicy {
    /// Inspect the finished epoch and decide.
    fn decide(&mut self, stats: EpochStats) -> ResizeDecision;
}

/// A policy that never resizes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FixedSize;

impl ResizePolicy for FixedSize {
    fn decide(&mut self, _stats: EpochStats) -> ResizeDecision {
        ResizeDecision::Keep
    }
}

/// Grow the budget by `factor` whenever the vague part handled more than
/// `vague_visit_threshold` of the epoch's traffic (a cheap saturation
/// proxy: heavy spill means the candidate part is undersized).
#[derive(Debug, Clone, Copy)]
pub struct GrowOnPressure {
    /// Vague-traffic fraction that triggers growth.
    pub vague_visit_threshold: f64,
    /// Multiplier applied to the budget on growth.
    pub factor: f64,
    /// Never grow beyond this many bytes.
    pub max_bytes: usize,
}

impl ResizePolicy for GrowOnPressure {
    fn decide(&mut self, stats: EpochStats) -> ResizeDecision {
        if stats.items == 0 {
            return ResizeDecision::Keep;
        }
        let spill = stats.vague_visits as f64 / stats.items as f64;
        if spill > self.vague_visit_threshold {
            let next = ((stats.memory_bytes as f64 * self.factor) as usize).min(self.max_bytes);
            if next > stats.memory_bytes {
                return ResizeDecision::Resize(next);
            }
        }
        ResizeDecision::Keep
    }
}

/// Summary of one finished epoch, passed to the resize policy.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Items inserted this epoch.
    pub items: u64,
    /// Reports emitted this epoch.
    pub reports: u64,
    /// Items that had to touch the vague part.
    pub vague_visits: u64,
    /// Memory budget of the finished epoch.
    pub memory_bytes: usize,
}

/// A QuantileFilter with automatic periodic resets (and optional resizing).
///
/// Only the default Count-sketch filter family is supported because a
/// resize requires rebuilding the structure from its builder parameters.
pub struct EpochFilter<C: SketchCounter = i8, P: ResizePolicy = FixedSize> {
    filter: QuantileFilter<CountSketch<C>>,
    criteria: Criteria,
    seed: u64,
    epoch_len: u64,
    items_this_epoch: u64,
    memory_bytes: usize,
    epochs_completed: u64,
    policy: P,
}

impl<C: SketchCounter, P: ResizePolicy> EpochFilter<C, P> {
    /// Create an epoch-managed filter, or a typed error if `epoch_len` is
    /// zero or the memory budget cannot produce a valid filter.
    pub fn try_new(
        criteria: Criteria,
        memory_bytes: usize,
        epoch_len: u64,
        seed: u64,
        policy: P,
    ) -> Result<Self, QfError> {
        if epoch_len == 0 {
            return Err(QfError::InvalidConfig {
                reason: "epoch length must be positive".into(),
            });
        }
        Ok(Self {
            filter: Self::try_build(criteria, memory_bytes, seed)?,
            criteria,
            seed,
            epoch_len,
            items_this_epoch: 0,
            memory_bytes,
            epochs_completed: 0,
            policy,
        })
    }

    /// Create an epoch-managed filter.
    ///
    /// # Panics
    /// Panics on any configuration error [`Self::try_new`] would report.
    pub fn new(
        criteria: Criteria,
        memory_bytes: usize,
        epoch_len: u64,
        seed: u64,
        policy: P,
    ) -> Self {
        match Self::try_new(criteria, memory_bytes, epoch_len, seed, policy) {
            Ok(ef) => ef,
            Err(e) => panic!("{e}"),
        }
    }

    fn try_build(
        criteria: Criteria,
        memory: usize,
        seed: u64,
    ) -> Result<QuantileFilter<CountSketch<C>>, BuilderError> {
        QuantileFilterBuilder::new(criteria)
            .memory_budget_bytes(memory)
            .seed(seed)
            .try_build_with_counter::<C>()
    }

    /// Items remaining until the next reset.
    pub fn remaining_in_epoch(&self) -> u64 {
        self.epoch_len - self.items_this_epoch
    }

    /// Completed epoch count.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Current memory budget.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Borrow the live filter.
    pub fn filter(&self) -> &QuantileFilter<CountSketch<C>> {
        &self.filter
    }

    /// Insert an item; runs the epoch rollover when due. Non-finite values
    /// are dropped (as in [`QuantileFilter::insert`]) and do not consume
    /// epoch capacity.
    pub fn insert<K: StreamKey + ?Sized>(&mut self, key: &K, value: f64) -> Option<Report> {
        if !value.is_finite() {
            return None;
        }
        if self.items_this_epoch >= self.epoch_len {
            self.rollover();
        }
        self.items_this_epoch += 1;
        self.filter.insert(key, value)
    }

    /// Force an epoch rollover now (reset + optional resize).
    ///
    /// # Panics
    /// With the `strict-invariants` feature enabled, panics if the
    /// post-rollover structure fails its invariant audit.
    pub fn rollover(&mut self) {
        let stats = EpochStats {
            items: self.items_this_epoch,
            reports: self.filter.stats().reports,
            vague_visits: self.filter.stats().vague_visits,
            memory_bytes: self.memory_bytes,
        };
        match self.policy.decide(stats) {
            ResizeDecision::Keep => self.filter.reset(),
            ResizeDecision::Resize(bytes) => {
                // Rotate the seed so consecutive epochs decorrelate.
                let seed = qf_hash::mix64(self.seed);
                match Self::try_build(self.criteria, bytes, seed) {
                    Ok(filter) => {
                        self.filter = filter;
                        self.memory_bytes = bytes;
                        self.seed = seed;
                    }
                    // A policy that proposes an unusable budget must not
                    // crash the stream: keep the old structure, just reset.
                    Err(_) => self.filter.reset(),
                }
            }
        }
        self.items_this_epoch = 0;
        self.epochs_completed += 1;
        crate::trace::epoch_rollover(stats.items, self.epochs_completed);
        // The rollover either resets or rebuilds the whole structure —
        // audit the fresh filter before the next epoch streams into it.
        #[cfg(feature = "strict-invariants")]
        {
            use qf_sketch::invariants::CheckInvariants;
            if let Err(e) = self.check_invariants() {
                panic!("strict-invariants after rollover: {e}");
            }
        }
    }

    /// Snapshot accessors (the epoch manager's own counters).
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &QuantileFilter<CountSketch<C>>,
        Criteria,
        u64,
        u64,
        u64,
        u64,
        u64,
    ) {
        (
            &self.filter,
            self.criteria,
            self.seed,
            self.epoch_len,
            self.items_this_epoch,
            self.memory_bytes as u64,
            self.epochs_completed,
        )
    }

    /// Reassemble an epoch filter from restored components. The resize
    /// policy is not serialized (it may hold arbitrary closures/state), so
    /// the caller supplies it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        filter: QuantileFilter<CountSketch<C>>,
        criteria: Criteria,
        seed: u64,
        epoch_len: u64,
        items_this_epoch: u64,
        memory_bytes: usize,
        epochs_completed: u64,
        policy: P,
    ) -> Self {
        Self {
            filter,
            criteria,
            seed,
            epoch_len,
            items_this_epoch,
            memory_bytes,
            epochs_completed,
            policy,
        }
    }
}

impl<C: SketchCounter, P: ResizePolicy> qf_sketch::invariants::CheckInvariants
    for EpochFilter<C, P>
{
    /// Audit the epoch counters (progress never exceeds the epoch length,
    /// the length is positive, the recorded budget matches the live
    /// structure's scale) and the wrapped filter.
    fn check_invariants(&self) -> Result<(), qf_sketch::invariants::InvariantViolation> {
        use qf_sketch::invariants::InvariantViolation as V;
        const S: &str = "EpochFilter";
        if self.epoch_len == 0 {
            return Err(V::new(S, "epoch length is zero"));
        }
        if self.items_this_epoch > self.epoch_len {
            return Err(V::new(
                S,
                format!(
                    "epoch progress {} exceeds epoch length {}",
                    self.items_this_epoch, self.epoch_len
                ),
            ));
        }
        // The builder rounds tiny budgets up to minimum dimensions, so the
        // floor keeps degenerate configs out of the comparison. A live
        // structure more than twice the recorded budget beyond that means
        // a resize lost track.
        if self.filter.memory_bytes() > self.memory_bytes.max(1024) * 2 {
            return Err(V::new(
                S,
                format!(
                    "live filter uses {} bytes against a {}-byte budget",
                    self.filter.memory_bytes(),
                    self.memory_bytes
                ),
            ));
        }
        self.filter.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crit() -> Criteria {
        Criteria::new(5.0, 0.9, 100.0).unwrap()
    }

    #[test]
    fn rollover_clears_state() {
        let mut ef: EpochFilter = EpochFilter::new(crit(), 16 * 1024, 100, 1, FixedSize);
        for _ in 0..5 {
            ef.insert(&1u64, 500.0);
        }
        assert_eq!(ef.filter().query(&1u64), 45);
        ef.rollover();
        assert_eq!(ef.filter().query(&1u64), 0);
        assert_eq!(ef.epochs_completed(), 1);
    }

    #[test]
    fn automatic_rollover_at_epoch_len() {
        let mut ef: EpochFilter = EpochFilter::new(crit(), 16 * 1024, 50, 2, FixedSize);
        for i in 0..120u64 {
            ef.insert(&(i % 5), 5.0);
        }
        assert_eq!(ef.epochs_completed(), 2);
        assert_eq!(ef.remaining_in_epoch(), 30);
    }

    #[test]
    fn detection_still_works_within_epochs() {
        let mut ef: EpochFilter = EpochFilter::new(crit(), 16 * 1024, 1000, 3, FixedSize);
        let mut reports = 0;
        for _ in 0..100 {
            if ef.insert(&9u64, 500.0).is_some() {
                reports += 1;
            }
        }
        assert!(reports >= 1);
    }

    #[test]
    fn grow_on_pressure_resizes() {
        let policy = GrowOnPressure {
            vague_visit_threshold: 0.1,
            factor: 2.0,
            max_bytes: 1 << 20,
        };
        // 512B filter: ~68 candidate slots; 500 distinct keys per epoch
        // spill heavily into the vague part.
        let mut ef: EpochFilter<i8, GrowOnPressure> = EpochFilter::new(crit(), 512, 500, 4, policy);
        let before = ef.memory_bytes();
        for i in 0..1_000u64 {
            ef.insert(&(i % 500), 5.0);
        }
        assert!(ef.epochs_completed() >= 1);
        assert!(
            ef.memory_bytes() > before,
            "pressure must trigger growth: {} -> {}",
            before,
            ef.memory_bytes()
        );
    }

    #[test]
    fn growth_capped_at_max() {
        let policy = GrowOnPressure {
            vague_visit_threshold: 0.0,
            factor: 100.0,
            max_bytes: 4096,
        };
        let mut ef: EpochFilter<i8, GrowOnPressure> = EpochFilter::new(crit(), 1024, 10, 5, policy);
        for i in 0..100u64 {
            ef.insert(&i, 5.0);
        }
        assert!(ef.memory_bytes() <= 4096);
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_rejected() {
        let _: EpochFilter = EpochFilter::new(crit(), 1024, 0, 6, FixedSize);
    }

    /// The item that lands exactly on the epoch boundary is part of the
    /// closing epoch: its report (if any) is returned before the rollover
    /// reset, which runs lazily on the *next* insert. A key accumulated
    /// earlier in the epoch witnesses that no reset happened under the
    /// boundary item's feet.
    #[test]
    fn boundary_report_precedes_rollover_reset() {
        let mut ef: EpochFilter = EpochFilter::new(crit(), 16 * 1024, 12, 7, FixedSize);
        // Items 1-5: key 1 accumulates +9 each (45 < 50, no report yet).
        for _ in 0..5 {
            assert!(ef.insert(&1u64, 500.0).is_none());
        }
        // Items 6-8: witness key, left at +27 for the rest of the epoch.
        for _ in 0..3 {
            ef.insert(&7u64, 500.0);
        }
        // Items 9-11: filler traffic.
        for _ in 0..3 {
            ef.insert(&8u64, 5.0);
        }
        assert_eq!(ef.remaining_in_epoch(), 1);
        // Item 12 — the boundary item — pushes key 1 to 54 ≥ 50: the
        // report must come out of this very call...
        let boundary = ef.insert(&1u64, 500.0);
        assert!(boundary.is_some(), "boundary item's report must be emitted");
        // ...with the epoch exhausted but not yet rolled over:
        assert_eq!(ef.remaining_in_epoch(), 0);
        assert_eq!(ef.epochs_completed(), 0, "rollover is lazy");
        assert_eq!(
            ef.filter().query(&7u64),
            27,
            "state must survive until the next insert triggers the reset"
        );
        // The next insert rolls over first, then lands in the new epoch.
        assert_eq!(ef.insert(&8u64, 5.0), None);
        assert_eq!(ef.epochs_completed(), 1);
        assert_eq!(ef.remaining_in_epoch(), 11);
        assert_eq!(ef.filter().query(&7u64), 0, "reset cleared the old epoch");
        assert_eq!(ef.filter().query(&8u64), -1, "new epoch counts from zero");
    }

    /// `remaining_in_epoch` counts down one per *accepted* item; dropped
    /// non-finite values consume no capacity.
    #[test]
    fn remaining_counts_down_and_skips_non_finite() {
        let mut ef: EpochFilter = EpochFilter::new(crit(), 16 * 1024, 4, 8, FixedSize);
        assert_eq!(ef.remaining_in_epoch(), 4);
        for expect in [3u64, 2, 1] {
            ef.insert(&1u64, 5.0);
            assert_eq!(ef.remaining_in_epoch(), expect);
        }
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(ef.insert(&1u64, bad).is_none());
            assert_eq!(ef.remaining_in_epoch(), 1, "non-finite must not consume");
        }
        ef.insert(&1u64, 5.0);
        assert_eq!(ef.remaining_in_epoch(), 0);
        assert_eq!(ef.epochs_completed(), 0);
        ef.insert(&1u64, 5.0);
        assert_eq!(ef.epochs_completed(), 1);
        assert_eq!(ef.remaining_in_epoch(), 3, "first item of the new epoch");
    }

    /// What the resize policy observes: automatic rollovers hand it
    /// exactly `epoch_len` items with per-epoch (not cumulative) filter
    /// stats, and a forced mid-epoch rollover reports the partial count.
    #[test]
    fn policy_sees_exact_per_epoch_stats() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct Recording(Rc<RefCell<Vec<EpochStats>>>);
        impl ResizePolicy for Recording {
            fn decide(&mut self, stats: EpochStats) -> ResizeDecision {
                self.0.borrow_mut().push(stats);
                ResizeDecision::Keep
            }
        }

        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut ef: EpochFilter<i8, Recording> =
            EpochFilter::new(crit(), 16 * 1024, 50, 9, Recording(Rc::clone(&seen)));
        // 125 inserts: two automatic rollovers, 25 items into epoch 3.
        for i in 0..125u64 {
            ef.insert(&(i % 5), 5.0);
        }
        // Forced mid-epoch rollover reports the partial epoch.
        ef.rollover();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].items, 50, "boundary epoch closes at exactly len");
        assert_eq!(seen[1].items, 50, "counters reset between epochs");
        assert_eq!(seen[2].items, 25, "forced rollover sees the partial count");
        for s in seen.iter() {
            assert_eq!(s.memory_bytes, 16 * 1024);
            assert!(
                s.reports <= s.items && s.vague_visits <= s.items,
                "stats must be per-epoch, not cumulative: {s:?}"
            );
        }
    }
}
