//! The merging t-digest (Dunning & Ertl, 2019).
//!
//! A t-digest summarizes a distribution as a sorted list of centroids
//! `(mean, weight)` whose sizes follow a scale function that keeps
//! centroids tiny near the tails (`q → 0` or `1`) and fat in the middle, so
//! extreme quantiles — exactly the ones tail-latency monitoring cares
//! about — stay accurate. This implementation uses the merging variant with
//! the `k₁` (arcsine) scale function and an insertion buffer.

use crate::{clamp_q, QuantileSummary};
use std::f64::consts::PI;

#[derive(Debug, Clone, Copy)]
struct Centroid {
    mean: f64,
    weight: f64,
}

/// A merging t-digest with the given compression parameter (usually 100).
#[derive(Debug, Clone)]
pub struct TDigest {
    centroids: Vec<Centroid>,
    buffer: Vec<f64>,
    compression: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl TDigest {
    /// Create a digest; higher `compression` means more centroids and more
    /// accuracy.
    ///
    /// # Panics
    /// Panics if `compression < 10.0`.
    pub fn new(compression: f64) -> Self {
        assert!(compression >= 10.0, "compression must be at least 10");
        Self {
            centroids: Vec::new(),
            buffer: Vec::with_capacity(Self::buffer_capacity(compression)),
            compression,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn buffer_capacity(compression: f64) -> usize {
        (5.0 * compression) as usize
    }

    /// Scale function k₁: concentrates resolution at the tails.
    #[inline]
    fn k_scale(&self, q: f64) -> f64 {
        self.compression / (2.0 * PI) * (2.0 * q - 1.0).clamp(-1.0, 1.0).asin()
    }

    /// Number of live centroids.
    pub fn centroid_count(&mut self) -> usize {
        self.flush();
        self.centroids.len()
    }

    /// Merge another t-digest into this one by streaming its centroids
    /// through the normal merge pass (weighted by their counts).
    pub fn merge(&mut self, other: &mut TDigest) {
        other.flush();
        self.flush();
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.centroids.extend_from_slice(&other.centroids);
        // Re-run the merge pass over the combined centroid list.
        self.centroids
            .sort_unstable_by(|a, b| a.mean.total_cmp(&b.mean));
        let all = core::mem::take(&mut self.centroids);
        if all.is_empty() {
            return;
        }
        let total: f64 = all.iter().map(|c| c.weight).sum();
        let mut merged: Vec<Centroid> = Vec::new();
        let mut current = all[0];
        let mut w_before = 0.0f64;
        let mut k_lower = self.k_scale(0.0);
        for c in all.into_iter().skip(1) {
            let q_upper = (w_before + current.weight + c.weight) / total;
            if self.k_scale(q_upper) - k_lower <= 1.0 {
                let w = current.weight + c.weight;
                current.mean += (c.mean - current.mean) * c.weight / w;
                current.weight = w;
            } else {
                w_before += current.weight;
                k_lower = self.k_scale(w_before / total);
                merged.push(current);
                current = c;
            }
        }
        merged.push(current);
        self.centroids = merged;
    }

    /// Merge the insertion buffer into the centroid list.
    fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let mut all: Vec<Centroid> = Vec::with_capacity(self.centroids.len() + self.buffer.len());
        all.append(&mut self.centroids);
        all.extend(self.buffer.drain(..).map(|v| Centroid {
            mean: v,
            weight: 1.0,
        }));
        all.sort_unstable_by(|a, b| a.mean.total_cmp(&b.mean));

        let total: f64 = all.iter().map(|c| c.weight).sum();
        let mut merged: Vec<Centroid> = Vec::new();
        let mut current = all[0];
        let mut w_before = 0.0f64; // weight strictly before `current`
        let mut k_lower = self.k_scale(0.0);
        for c in all.into_iter().skip(1) {
            let q_upper = (w_before + current.weight + c.weight) / total;
            if self.k_scale(q_upper) - k_lower <= 1.0 {
                // Merge c into current.
                let w = current.weight + c.weight;
                current.mean += (c.mean - current.mean) * c.weight / w;
                current.weight = w;
            } else {
                w_before += current.weight;
                k_lower = self.k_scale(w_before / total);
                merged.push(current);
                current = c;
            }
        }
        merged.push(current);
        self.centroids = merged;
    }
}

impl QuantileSummary for TDigest {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan());
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buffer.push(value);
        self.count += 1;
        if self.buffer.len() >= Self::buffer_capacity(self.compression) {
            self.flush();
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn query(&mut self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        self.flush();
        let q = clamp_q(q);
        let total: f64 = self.centroids.iter().map(|c| c.weight).sum();
        let target = q * total;

        // Walk centroids, interpolating linearly inside each.
        let mut cum = 0.0f64;
        for (i, c) in self.centroids.iter().enumerate() {
            let lo = cum;
            let hi = cum + c.weight;
            if target < hi || i == self.centroids.len() - 1 {
                // Interpolate between neighbour means.
                let left = if i == 0 {
                    self.min
                } else {
                    (self.centroids[i - 1].mean + c.mean) / 2.0
                };
                let right = if i == self.centroids.len() - 1 {
                    self.max
                } else {
                    (c.mean + self.centroids[i + 1].mean) / 2.0
                };
                let frac = if c.weight > 0.0 {
                    ((target - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.5
                };
                return Some((left + (right - left) * frac).clamp(self.min, self.max));
            }
            cum = hi;
        }
        self.centroids.last().map(|c| c.mean)
    }

    fn clear(&mut self) {
        self.centroids.clear();
        self.buffer.clear();
        self.count = 0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    fn memory_bytes(&self) -> usize {
        self.centroids.capacity() * core::mem::size_of::<Centroid>()
            + self.buffer.capacity() * core::mem::size_of::<f64>()
    }

    fn kind_name(&self) -> &'static str {
        "t-digest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value() {
        let mut td = TDigest::new(100.0);
        td.insert(42.0);
        assert_eq!(td.query(0.5), Some(42.0));
    }

    #[test]
    fn merge_matches_union_stream() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut a = TDigest::new(100.0);
        let mut b = TDigest::new(100.0);
        let mut all = TDigest::new(100.0);
        for i in 0..60_000 {
            let v: f64 = rng.gen_range(0.0..1.0);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.insert(v);
        }
        a.merge(&mut b);
        assert_eq!(a.count(), 60_000);
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let ma = a.query(q).unwrap();
            let mu = all.query(q).unwrap();
            assert!((ma - mu).abs() < 0.02, "q={q}: merged {ma} vs union {mu}");
        }
    }

    #[test]
    fn uniform_quantiles_accurate() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut td = TDigest::new(100.0);
        for _ in 0..100_000 {
            td.insert(rng.gen_range(0.0..1.0));
        }
        for &q in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let est = td.query(q).unwrap();
            assert!((est - q).abs() < 0.02, "q={q} est={est}");
        }
    }

    #[test]
    fn tail_quantiles_tighter_than_middle() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut td = TDigest::new(100.0);
        let n = 200_000;
        for _ in 0..n {
            td.insert(rng.gen_range(0.0..1.0));
        }
        let tail_err = (td.query(0.999).unwrap() - 0.999).abs();
        assert!(tail_err < 0.005, "p99.9 error {tail_err}");
    }

    #[test]
    fn centroid_count_bounded() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut td = TDigest::new(100.0);
        for _ in 0..500_000 {
            td.insert(rng.gen_range(-1e6..1e6));
        }
        let c = td.centroid_count();
        assert!(c < 200, "centroids {c}");
    }

    #[test]
    fn monotone_in_q() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut td = TDigest::new(64.0);
        for _ in 0..50_000 {
            td.insert(rng.gen_range(0.0..100.0));
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 1..50 {
            let q = f64::from(i) / 50.0;
            let v = td.query(q).unwrap();
            assert!(v >= prev - 1e-9, "quantiles not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn extremes_clamped_to_min_max() {
        let mut td = TDigest::new(50.0);
        for v in 0..10_000 {
            td.insert(f64::from(v));
        }
        assert!(td.query(0.0).unwrap() >= 0.0);
        assert!(td.query(0.9999999).unwrap() <= 9_999.0);
    }

    #[test]
    fn skewed_lognormal_median() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut td = TDigest::new(100.0);
        let mut values = vec![];
        for _ in 0..100_000 {
            // Box-Muller for a standard normal, exponentiate for lognormal.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos();
            let v = z.exp();
            td.insert(v);
            values.push(v);
        }
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let true_median = values[values.len() / 2];
        let est = td.query(0.5).unwrap();
        assert!(
            (est - true_median).abs() / true_median < 0.05,
            "median est {est} vs {true_median}"
        );
    }

    #[test]
    fn clear_resets() {
        let mut td = TDigest::new(20.0);
        td.insert(1.0);
        td.clear();
        assert_eq!(td.count(), 0);
        assert_eq!(td.query(0.5), None);
    }

    #[test]
    #[should_panic(expected = "compression must be")]
    fn tiny_compression_rejected() {
        let _ = TDigest::new(1.0);
    }
}
