//! Zero-error quantile oracle over a buffered value stream.
//!
//! This is the "exact quantile calculation" reference of §II-B: it stores
//! every value and sorts lazily on query. It is the accuracy ground truth
//! for every approximate summary in this crate and the value-set model used
//! by the exact outstanding-key detector.

use crate::{target_rank, QuantileSummary};

/// Exact quantiles via a lazily-sorted buffer.
#[derive(Debug, Clone, Default)]
pub struct ExactQuantiles {
    values: Vec<f64>,
    sorted_prefix: usize,
}

impl ExactQuantiles {
    /// Create an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            values: Vec::with_capacity(cap),
            sorted_prefix: 0,
        }
    }

    fn ensure_sorted(&mut self) {
        if self.sorted_prefix < self.values.len() {
            // Values arrive mostly unsorted; a full unstable sort is the
            // cheapest robust option and is amortized across queries.
            self.values.sort_unstable_by(|a, b| a.total_cmp(b));
            self.sorted_prefix = self.values.len();
        }
    }

    /// The exact `(ε, δ)`-quantile of Definition 3: the value at index
    /// `⌊δ·n − ε⌋`, or `None` ( = −∞ in the paper) if that index is
    /// negative. This is the primitive the ground-truth detector uses.
    pub fn biased_quantile(
        &mut self,
        epsilon: f64,
        delta: f64,
        n_override: Option<u64>,
    ) -> Option<f64> {
        let n = n_override.unwrap_or(self.values.len() as u64);
        if n == 0 {
            return None;
        }
        let idx = (delta * n as f64 - epsilon).floor();
        if idx < 0.0 {
            return None;
        }
        self.ensure_sorted();
        let idx = (idx as usize).min(self.values.len().saturating_sub(1));
        self.values.get(idx).copied()
    }

    /// Exact rank (count of values strictly less than `v`).
    pub fn rank(&mut self, v: f64) -> u64 {
        self.ensure_sorted();
        self.values.partition_point(|&x| x < v) as u64
    }

    /// Borrow the sorted values.
    pub fn sorted_values(&mut self) -> &[f64] {
        self.ensure_sorted();
        &self.values
    }
}

impl QuantileSummary for ExactQuantiles {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan(), "NaN values are not orderable");
        self.values.push(value);
    }

    fn count(&self) -> u64 {
        self.values.len() as u64
    }

    fn query(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let idx = target_rank(q, self.values.len() as u64) as usize;
        self.values.get(idx).copied()
    }

    fn clear(&mut self) {
        self.values.clear();
        self.sorted_prefix = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.values.capacity() * core::mem::size_of::<f64>()
    }

    fn kind_name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_example() {
        // User A's values {1, 5, 9}: the 0.5-quantile is 5 and exceeds
        // T = 3, so A is outstanding.
        let mut e = ExactQuantiles::new();
        for v in [1.0, 5.0, 9.0] {
            e.insert(v);
        }
        assert_eq!(e.query(0.5), Some(5.0));
        assert!(e.query(0.5).unwrap() > 3.0);
    }

    #[test]
    fn paper_noise_example_neighborhood_a() {
        // §II-A example: readings [65,67,72,69,74,66,68,75], δ=0.8, ε=1.
        // δ-quantile = 7th lowest (74); with ε=1, 6th lowest = 72 > 70 dB.
        let mut e = ExactQuantiles::new();
        for v in [65.0, 67.0, 72.0, 69.0, 74.0, 66.0, 68.0, 75.0] {
            e.insert(v);
        }
        assert_eq!(e.query(0.8), Some(74.0));
        assert_eq!(e.biased_quantile(1.0, 0.8, None), Some(72.0));
    }

    #[test]
    fn paper_noise_example_neighborhood_b() {
        // [60,62,64,61,63,75,80,62]: the (1, 0.8)-quantile is 64 ≤ 70.
        let mut e = ExactQuantiles::new();
        for v in [60.0, 62.0, 64.0, 61.0, 63.0, 75.0, 80.0, 62.0] {
            e.insert(v);
        }
        assert_eq!(e.biased_quantile(1.0, 0.8, None), Some(64.0));
    }

    #[test]
    fn biased_quantile_negative_index_is_none() {
        // ⌊δ·n − ε⌋ < 0 ⇒ −∞ (Definition 3).
        let mut e = ExactQuantiles::new();
        e.insert(100.0);
        assert_eq!(e.biased_quantile(5.0, 0.95, None), None);
    }

    #[test]
    fn rank_counts_strictly_less() {
        let mut e = ExactQuantiles::new();
        for v in [1.0, 2.0, 2.0, 3.0] {
            e.insert(v);
        }
        assert_eq!(e.rank(2.0), 1);
        assert_eq!(e.rank(2.5), 3);
        assert_eq!(e.rank(0.0), 0);
    }

    #[test]
    fn empty_queries() {
        let mut e = ExactQuantiles::new();
        assert_eq!(e.query(0.5), None);
        assert_eq!(e.biased_quantile(0.0, 0.5, None), None);
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut e = ExactQuantiles::new();
        e.insert(5.0);
        e.clear();
        assert_eq!(e.count(), 0);
        assert_eq!(e.query(0.9), None);
    }

    #[test]
    fn interleaved_insert_query_keeps_correctness() {
        let mut e = ExactQuantiles::new();
        e.insert(10.0);
        assert_eq!(e.query(0.0), Some(10.0));
        e.insert(5.0);
        assert_eq!(e.query(0.0), Some(5.0));
        e.insert(20.0);
        assert_eq!(e.query(0.5), Some(10.0));
    }

    proptest::proptest! {
        #[test]
        fn prop_matches_direct_sort(values in proptest::collection::vec(-1e6f64..1e6, 1..300), q in 0.0f64..0.999) {
            let mut e = ExactQuantiles::new();
            for &v in &values {
                e.insert(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((q * sorted.len() as f64).floor() as usize).min(sorted.len() - 1);
            proptest::prop_assert_eq!(e.query(q), Some(sorted[idx]));
        }
    }
}
