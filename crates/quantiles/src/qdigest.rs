//! The Q-digest (Shrivastava, Buragohain, Agrawal & Suri, SenSys 2004) —
//! the sensor-network quantile summary the paper cites among the classic
//! single-key algorithms (§II-B).
//!
//! A Q-digest summarizes integer values from a fixed universe `[0, 2^L)`
//! as a set of binary-tree nodes with counts, compressed so that every
//! non-root node satisfies `count(v) + count(parent) + count(sibling) >
//! n/k` — small scattered counts get pushed up the tree, bounding the
//! digest at `O(k·L)` nodes while keeping rank error at `O(n·L/k)`.

use crate::{clamp_q, QuantileSummary};
use std::collections::HashMap;

/// Number of levels in the value tree (values are clamped to `[0, 2^L)`).
const LEVELS: u32 = 32;

/// A Q-digest over the integer universe `[0, 2^32)` with compression
/// factor `k`.
#[derive(Debug, Clone)]
pub struct QDigest {
    /// Node id (heap numbering: root = 1) → count.
    nodes: HashMap<u64, u64>,
    k: u64,
    count: u64,
    inserts_since_compress: u64,
}

impl QDigest {
    /// Create a digest; larger `k` means more nodes and less rank error
    /// (error is O(log(U)/k) relative).
    ///
    /// # Panics
    /// Panics if `k < 8`.
    pub fn new(k: u64) -> Self {
        assert!(k >= 8, "compression factor k must be at least 8");
        Self {
            nodes: HashMap::new(),
            k,
            count: 0,
            inserts_since_compress: 0,
        }
    }

    /// Leaf node id for a value.
    #[inline]
    fn leaf_of(value: u64) -> u64 {
        (1u64 << LEVELS) + value
    }

    /// Value range `[lo, hi]` covered by a node.
    fn range_of(node: u64) -> (u64, u64) {
        let level = 63 - node.leading_zeros(); // depth from root (root=1 at level 0)
        let span_bits = LEVELS - level;
        let offset = node - (1u64 << level);
        let lo = offset << span_bits;
        let hi = lo + (1u64 << span_bits) - 1;
        (lo, hi)
    }

    /// Number of stored nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The compression threshold `⌊n/k⌋`.
    #[inline]
    fn threshold(&self) -> u64 {
        self.count / self.k
    }

    /// Bottom-up compression: merge under-full sibling pairs into parents.
    fn compress(&mut self) {
        let threshold = self.threshold();
        if threshold == 0 {
            return;
        }
        // Process nodes level by level from the leaves upward.
        let mut ids: Vec<u64> = self.nodes.keys().copied().collect();
        ids.sort_unstable_by_key(|&id| std::cmp::Reverse(id));
        for id in ids {
            if id <= 1 {
                continue;
            }
            let Some(&c) = self.nodes.get(&id) else {
                continue;
            };
            let parent = id >> 1;
            let sibling = id ^ 1;
            let pc = self.nodes.get(&parent).copied().unwrap_or(0);
            let sc = self.nodes.get(&sibling).copied().unwrap_or(0);
            if c + pc + sc <= threshold {
                // Merge this node (and its sibling) into the parent.
                self.nodes.remove(&id);
                self.nodes.remove(&sibling);
                *self.nodes.entry(parent).or_insert(0) += c + sc;
            }
        }
    }

    /// Merge another digest into this one (Q-digests are mergeable — their
    /// original use case is in-network sensor aggregation).
    pub fn merge(&mut self, other: &QDigest) {
        for (&node, &c) in &other.nodes {
            *self.nodes.entry(node).or_insert(0) += c;
        }
        self.count += other.count;
        self.compress();
    }

    /// Insert an integer value directly.
    pub fn insert_u64(&mut self, value: u64) {
        let value = value.min((1u64 << LEVELS) - 1);
        *self.nodes.entry(Self::leaf_of(value)).or_insert(0) += 1;
        self.count += 1;
        self.inserts_since_compress += 1;
        if self.inserts_since_compress >= self.k {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    /// Quantile query over the integer universe.
    pub fn query_u64(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (clamp_q(q) * self.count as f64).floor() as u64;
        // Walk nodes in order of their range upper bound (post-order-ish):
        // the standard Q-digest query sorts by (hi, lo descending).
        let mut ordered: Vec<(u64, u64, u64)> = self
            .nodes
            .iter()
            .map(|(&node, &c)| {
                let (lo, hi) = Self::range_of(node);
                (hi, lo, c)
            })
            .collect();
        ordered.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut acc = 0u64;
        for (hi, _lo, c) in ordered {
            acc += c;
            if acc > target {
                return Some(hi);
            }
        }
        // All mass exhausted: maximum representable.
        Some((1u64 << LEVELS) - 1)
    }
}

impl QuantileSummary for QDigest {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan());
        self.insert_u64(value.max(0.0) as u64);
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn query(&mut self, q: f64) -> Option<f64> {
        self.query_u64(q).map(|v| v as f64)
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.count = 0;
        self.inserts_since_compress = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.len() * (8 + 8 + 8) // id + count + map overhead
    }

    fn kind_name(&self) -> &'static str {
        "Q-digest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_of_root_and_leaves() {
        assert_eq!(QDigest::range_of(1), (0, u64::from(u32::MAX)));
        assert_eq!(QDigest::range_of(QDigest::leaf_of(0)), (0, 0));
        assert_eq!(QDigest::range_of(QDigest::leaf_of(77)), (77, 77));
        // Level-1 nodes split the universe in half.
        assert_eq!(QDigest::range_of(2), (0, (1u64 << 31) - 1));
        assert_eq!(QDigest::range_of(3), (1u64 << 31, u64::from(u32::MAX)));
    }

    #[test]
    fn small_stream_exactish() {
        let mut qd = QDigest::new(64);
        for v in [10u64, 20, 30] {
            qd.insert_u64(v);
        }
        let median = qd.query_u64(0.5).unwrap();
        assert!((10..=30).contains(&median));
    }

    #[test]
    fn rank_error_bounded_uniform() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(1);
        let k = 256;
        let mut qd = QDigest::new(k);
        let n = 50_000;
        let mut values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1_000_000u64)).collect();
        for &v in &values {
            qd.insert_u64(v);
        }
        values.sort_unstable();
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let est = qd.query_u64(q).unwrap();
            let rank = values.partition_point(|&x| x <= est) as f64;
            let err = (rank - q * n as f64).abs() / n as f64;
            // Q-digest error bound is O(L/k) ≈ 32/256 = 0.125; allow some
            // slack over the constant.
            assert!(err < 0.15, "q={q} rank error {err}");
        }
    }

    #[test]
    fn node_count_compressed() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(2);
        let mut qd = QDigest::new(128);
        for _ in 0..200_000 {
            qd.insert_u64(rng.gen_range(0..u64::from(u32::MAX)));
        }
        // O(k·L) bound: 128·32 = 4096 nodes, far below 200K leaves.
        assert!(qd.node_count() < 8_192, "nodes {}", qd.node_count());
    }

    #[test]
    fn merge_equals_union_stream() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = QDigest::new(128);
        let mut b = QDigest::new(128);
        let mut all = QDigest::new(128);
        for i in 0..20_000 {
            let v = rng.gen_range(0..100_000u64);
            if i % 2 == 0 {
                a.insert_u64(v);
            } else {
                b.insert_u64(v);
            }
            all.insert_u64(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for &q in &[0.25, 0.5, 0.75] {
            let ma = a.query_u64(q).unwrap() as f64;
            let mu = all.query_u64(q).unwrap() as f64;
            // Merged and union-stream answers agree within the error bound.
            assert!(
                (ma - mu).abs() / mu.max(1.0) < 0.25,
                "q={q}: merged {ma} vs union {mu}"
            );
        }
    }

    #[test]
    fn f64_interface_clamps() {
        let mut qd = QDigest::new(16);
        qd.insert(-5.0); // clamps to 0
        qd.insert(1e12); // clamps to 2^32 − 1
        assert_eq!(qd.count(), 2);
        assert!(qd.query(0.0).is_some());
    }

    #[test]
    fn clear_resets() {
        let mut qd = QDigest::new(16);
        qd.insert_u64(5);
        qd.clear();
        assert_eq!(qd.count(), 0);
        assert_eq!(qd.query_u64(0.5), None);
    }
}
