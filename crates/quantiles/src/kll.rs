//! The KLL sketch (Karnin, Lang & Liberty, FOCS 2016).
//!
//! KLL stacks *compactors*: level `h` holds items of weight `2^h`. When a
//! level overflows its capacity it sorts itself and promotes every other
//! item (random parity) to the level above, halving the item count while
//! preserving ranks in expectation. Capacities shrink geometrically with
//! distance from the top level (`c = 2/3`), giving the asymptotically
//! optimal `O((1/ε)·√log(1/ε))`-style space.
//!
//! It is one of the two classic single-key estimators (§II-B) that the
//! holistic, per-key-structure approach would have to replicate per key —
//! the storage blow-up that motivates the paper.

use crate::{target_rank, QuantileSummary};
use qf_hash::SplitMix64;

const CAPACITY_RATIO: f64 = 2.0 / 3.0;
const MIN_CAPACITY: usize = 2;

/// A KLL quantile sketch with parameter `k` (top-compactor capacity).
#[derive(Debug, Clone)]
pub struct KllSketch {
    /// `compactors[h]` holds items of weight `2^h`; kept unsorted between
    /// compactions.
    compactors: Vec<Vec<f64>>,
    k: usize,
    count: u64,
    rng: SplitMix64,
}

impl KllSketch {
    /// Create a sketch; `k` trades space for accuracy (rank error is
    /// `O(1/k)` with high probability). `k = 200` is the usual default.
    ///
    /// # Panics
    /// Panics if `k < 8`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 8, "k must be at least 8");
        Self {
            compactors: vec![Vec::new()],
            k,
            count: 0,
            rng: SplitMix64::new(seed),
        }
    }

    /// Capacity of level `h` given the current height.
    fn capacity(&self, level: usize) -> usize {
        let height = self.compactors.len();
        let depth = (height - 1 - level) as i32;
        ((self.k as f64) * CAPACITY_RATIO.powi(depth)).ceil() as usize
    }

    fn capacity_max(&self, level: usize) -> usize {
        self.capacity(level).max(MIN_CAPACITY)
    }

    /// Total items across all compactors.
    fn size(&self) -> usize {
        self.compactors.iter().map(Vec::len).sum()
    }

    fn total_capacity(&self) -> usize {
        (0..self.compactors.len())
            .map(|h| self.capacity_max(h))
            .sum()
    }

    /// Compact the lowest over-full level.
    fn compress(&mut self) {
        for level in 0..self.compactors.len() {
            if self.compactors[level].len() >= self.capacity_max(level) {
                if level + 1 == self.compactors.len() {
                    self.compactors.push(Vec::new());
                }
                let mut items = core::mem::take(&mut self.compactors[level]);
                items.sort_unstable_by(|a, b| a.total_cmp(b));
                let offset = (self.rng.next_u64() & 1) as usize;
                let promoted: Vec<f64> = items.iter().skip(offset).step_by(2).copied().collect();
                self.compactors[level + 1].extend_from_slice(&promoted);
                // Items at odd/even positions not promoted are discarded —
                // that is the lossy step whose error KLL bounds.
                return;
            }
        }
    }

    /// Number of compactor levels currently allocated.
    pub fn height(&self) -> usize {
        self.compactors.len()
    }

    /// Merge another KLL sketch into this one: concatenate compactors
    /// level-wise, then compress until within capacity. Merging preserves
    /// the rank-error guarantee (the KLL paper's central property).
    pub fn merge(&mut self, other: &KllSketch) {
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (level, c) in other.compactors.iter().enumerate() {
            self.compactors[level].extend_from_slice(c);
        }
        self.count += other.count;
        while self.size() >= self.total_capacity() {
            self.compress();
        }
    }

    /// Collect the weighted items (value, weight) of the whole sketch.
    fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.size());
        for (h, c) in self.compactors.iter().enumerate() {
            let w = 1u64 << h;
            out.extend(c.iter().map(|&v| (v, w)));
        }
        out
    }
}

impl QuantileSummary for KllSketch {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan());
        self.compactors[0].push(value);
        self.count += 1;
        if self.size() >= self.total_capacity() {
            self.compress();
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn query(&mut self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut items = self.weighted_items();
        items.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let total: u64 = items.iter().map(|&(_, w)| w).sum();
        let target = target_rank(q, total);
        let mut acc = 0u64;
        for &(v, w) in &items {
            acc += w;
            if acc > target {
                return Some(v);
            }
        }
        // target < total guarantees the loop returns; the largest item is
        // a safe answer if rank accounting ever drifts.
        items.last().map(|&(v, _)| v)
    }

    fn clear(&mut self) {
        self.compactors = vec![Vec::new()];
        self.count = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.compactors
            .iter()
            .map(|c| c.capacity() * core::mem::size_of::<f64>())
            .sum()
    }

    fn kind_name(&self) -> &'static str {
        "KLL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn true_rank(sorted: &[f64], v: f64) -> f64 {
        sorted.partition_point(|&x| x <= v) as f64
    }

    #[test]
    fn merge_matches_union_stream() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut a = KllSketch::new(200, 7);
        let mut b = KllSketch::new(200, 8);
        let mut all: Vec<f64> = Vec::new();
        for i in 0..40_000 {
            let v: f64 = rng.gen_range(0.0..1000.0);
            if i % 2 == 0 {
                a.insert(v);
            } else {
                b.insert(v);
            }
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 40_000);
        all.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
        for &q in &[0.1, 0.5, 0.9] {
            let est = a.query(q).unwrap();
            let err = (true_rank(&all, est) - q * all.len() as f64).abs() / all.len() as f64;
            assert!(err < 0.03, "merged q={q} rank error {err}");
        }
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = KllSketch::new(64, 1);
        for v in 0..100 {
            a.insert(f64::from(v));
        }
        let before = a.query(0.5);
        let b = KllSketch::new(64, 2);
        a.merge(&b);
        assert_eq!(a.query(0.5), before);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn small_stream_near_exact() {
        let mut kll = KllSketch::new(200, 1);
        for v in [3.0, 1.0, 2.0] {
            kll.insert(v);
        }
        assert_eq!(kll.query(0.0), Some(1.0));
        assert_eq!(kll.query(0.5), Some(2.0));
    }

    #[test]
    fn rank_error_bounded_uniform() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let n = 100_000usize;
        let mut values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut kll = KllSketch::new(200, 2);
        for &v in &values {
            kll.insert(v);
        }
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.1, 0.5, 0.9, 0.95, 0.99] {
            let est = kll.query(q).unwrap();
            let err = (true_rank(&values, est) - q * n as f64).abs() / n as f64;
            assert!(err < 0.02, "q={q} rank error {err}");
        }
    }

    #[test]
    fn space_stays_bounded() {
        let mut kll = KllSketch::new(128, 3);
        for v in 0..1_000_000 {
            kll.insert(f64::from(v));
        }
        // Size must be O(k · levels), far below n.
        assert!(kll.size() < 4_000, "size {}", kll.size());
        assert!(kll.height() >= 10);
    }

    #[test]
    fn adversarial_sorted_input() {
        let n = 50_000;
        let mut kll = KllSketch::new(256, 4);
        for v in 0..n {
            kll.insert(f64::from(v));
        }
        let est = kll.query(0.5).unwrap();
        let rel = (est - f64::from(n) * 0.5).abs() / f64::from(n);
        assert!(rel < 0.02, "median off by {rel}");
    }

    #[test]
    fn weights_account_for_count() {
        let mut kll = KllSketch::new(64, 5);
        for v in 0..10_000 {
            kll.insert(f64::from(v % 100));
        }
        assert_eq!(kll.count(), 10_000);
    }

    #[test]
    fn clear_resets() {
        let mut kll = KllSketch::new(64, 6);
        kll.insert(1.0);
        kll.clear();
        assert_eq!(kll.count(), 0);
        assert_eq!(kll.query(0.5), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = KllSketch::new(64, 42);
        let mut b = KllSketch::new(64, 42);
        for v in 0..50_000 {
            let x = f64::from((v * 2_654_435_761u64 % 100_000) as u32);
            a.insert(x);
            b.insert(x);
        }
        for &q in &[0.25, 0.5, 0.75] {
            assert_eq!(a.query(q), b.query(q));
        }
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn tiny_k_rejected() {
        let _ = KllSketch::new(4, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]
        #[test]
        fn prop_rank_error_small_on_random_streams(seed in 0u64..1000) {
            use rand::prelude::*;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = 20_000usize;
            let mut values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1e3..1e3)).collect();
            let mut kll = KllSketch::new(200, seed);
            for &v in &values {
                kll.insert(v);
            }
            values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let est = kll.query(0.9).unwrap();
            let err = (true_rank(&values, est) - 0.9 * n as f64).abs() / n as f64;
            proptest::prop_assert!(err < 0.03, "rank error {}", err);
        }
    }
}
