//! The Greenwald–Khanna ε-approximate quantile summary (SIGMOD 2001).
//!
//! GK keeps a sorted list of tuples `(v, g, Δ)` where `g` is the gap in
//! minimum rank to the previous tuple and `Δ` bounds the rank uncertainty.
//! Invariant: `g_i + Δ_i ≤ ⌊2εn⌋ + 1` for every tuple, which guarantees any
//! rank query is answered within `εn`.
//!
//! This is the summary SQUAD attaches to each tracked heavy key, and the
//! paper's canonical example of an *offline query* structure: every query
//! walks/binary-searches the summary (§II-B footnote 2), which is what makes
//! the per-item detect loop of the SQUAD baseline slow compared to
//! QuantileFilter's O(1) test.

use crate::{clamp_q, QuantileSummary};

#[derive(Debug, Clone, Copy)]
struct Entry {
    value: f64,
    /// Gap between this tuple's min-rank and the previous tuple's min-rank.
    g: u64,
    /// Rank uncertainty: max-rank = min-rank + delta.
    delta: u64,
}

/// A GK quantile summary with target rank error `epsilon`.
#[derive(Debug, Clone)]
pub struct GkSummary {
    entries: Vec<Entry>,
    epsilon: f64,
    count: u64,
    inserts_since_compress: u64,
}

impl GkSummary {
    /// Create a summary that answers quantile queries within `epsilon·n`
    /// rank error.
    ///
    /// # Panics
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        Self {
            entries: Vec::new(),
            epsilon,
            count: 0,
            inserts_since_compress: 0,
        }
    }

    /// The configured rank-error parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of stored tuples (the space the structure actually uses).
    pub fn tuple_count(&self) -> usize {
        self.entries.len()
    }

    #[inline]
    fn threshold(&self) -> u64 {
        (2.0 * self.epsilon * self.count as f64).floor() as u64
    }

    /// Merge tuples whose combined uncertainty still satisfies the GK
    /// invariant. Runs right-to-left as in the original paper.
    fn compress(&mut self) {
        if self.entries.len() < 3 {
            return;
        }
        let limit = self.threshold();
        let mut i = self.entries.len() - 2;
        // Never merge into the first or remove the last tuple: min and max
        // must stay exact.
        while i >= 1 {
            let merged_g = self.entries[i].g + self.entries[i + 1].g;
            if merged_g + self.entries[i + 1].delta <= limit {
                self.entries[i + 1].g = merged_g;
                self.entries.remove(i);
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
    }

    /// Rank query: the value whose min/max rank brackets `rank` (1-based)
    /// within `εn`.
    fn query_rank(&self, rank: u64) -> Option<f64> {
        if self.entries.is_empty() {
            return None;
        }
        let slack = self.epsilon * self.count as f64;
        let mut r_min = 0u64;
        for i in 0..self.entries.len() - 1 {
            r_min += self.entries[i].g;
            let next_r_max = r_min + self.entries[i + 1].g + self.entries[i + 1].delta;
            if next_r_max as f64 > rank as f64 + slack {
                return Some(self.entries[i].value);
            }
        }
        self.entries.last().map(|e| e.value)
    }
}

impl QuantileSummary for GkSummary {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan());
        self.count += 1;
        // Find the first entry with entry.value > value.
        let pos = self.entries.partition_point(|e| e.value <= value);
        let delta = if pos == 0 || pos == self.entries.len() {
            // New minimum or maximum: exact rank.
            0
        } else {
            self.threshold().saturating_sub(1)
        };
        self.entries.insert(pos, Entry { value, g: 1, delta });
        self.inserts_since_compress += 1;
        // Compress every ⌈1/(2ε)⌉ inserts as in the original algorithm.
        let period = (1.0 / (2.0 * self.epsilon)).ceil() as u64;
        if self.inserts_since_compress >= period {
            self.compress();
            self.inserts_since_compress = 0;
        }
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn query(&mut self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        // Definition 2 uses 0-based ⌊q·n⌋; GK ranks are 1-based.
        let rank = (clamp_q(q) * self.count as f64).floor() as u64 + 1;
        self.query_rank(rank.min(self.count))
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.count = 0;
        self.inserts_since_compress = 0;
    }

    fn memory_bytes(&self) -> usize {
        self.entries.capacity() * core::mem::size_of::<Entry>()
    }

    fn kind_name(&self) -> &'static str {
        "GK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank_of(sorted: &[f64], v: f64) -> (usize, usize) {
        let lo = sorted.partition_point(|&x| x < v);
        let hi = sorted.partition_point(|&x| x <= v);
        (lo, hi)
    }

    /// Check that for all tested quantiles the returned value's true rank is
    /// within eps*n + 1 of the target rank.
    fn assert_rank_error_bounded(values: &mut [f64], gk: &mut GkSummary, eps: f64) {
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let n = values.len() as f64;
        for &q in &[0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let est = gk.query(q).unwrap();
            let target = (q * n).floor();
            let (lo, hi) = rank_of(values, est);
            let err = if (lo as f64) > target {
                lo as f64 - target
            } else if (hi as f64) < target {
                target - hi as f64
            } else {
                0.0
            };
            assert!(
                err <= eps * n + 1.0,
                "q={q}: rank err {err} > {} (n={n})",
                eps * n + 1.0
            );
        }
    }

    #[test]
    fn exact_for_tiny_streams() {
        let mut gk = GkSummary::new(0.01);
        for v in [5.0, 1.0, 9.0] {
            gk.insert(v);
        }
        // {1,5,9}: 0.5-quantile is 5.
        assert_eq!(gk.query(0.5), Some(5.0));
        assert_eq!(gk.query(0.0), Some(1.0));
    }

    #[test]
    fn sorted_input_error_bounded() {
        let eps = 0.01;
        let mut gk = GkSummary::new(eps);
        let mut values: Vec<f64> = (0..20_000).map(f64::from).collect();
        for &v in &values {
            gk.insert(v);
        }
        assert_rank_error_bounded(&mut values, &mut gk, eps);
    }

    #[test]
    fn reverse_sorted_input_error_bounded() {
        let eps = 0.02;
        let mut gk = GkSummary::new(eps);
        let mut values: Vec<f64> = (0..10_000).rev().map(f64::from).collect();
        for &v in &values {
            gk.insert(v);
        }
        assert_rank_error_bounded(&mut values, &mut gk, eps);
    }

    #[test]
    fn shuffled_input_error_bounded() {
        use rand::prelude::*;
        let eps = 0.01;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut values: Vec<f64> = (0..30_000).map(f64::from).collect();
        values.shuffle(&mut rng);
        let mut gk = GkSummary::new(eps);
        for &v in &values {
            gk.insert(v);
        }
        assert_rank_error_bounded(&mut values, &mut gk, eps);
    }

    #[test]
    fn space_is_sublinear() {
        let mut gk = GkSummary::new(0.01);
        for v in 0..100_000 {
            gk.insert(f64::from(v));
        }
        // GK guarantees O((1/ε)·log(εn)) tuples; with ε = 0.01 and n = 1e5
        // the summary must be far below n.
        assert!(
            gk.tuple_count() < 5_000,
            "summary kept {} tuples",
            gk.tuple_count()
        );
    }

    #[test]
    fn duplicates_handled() {
        let eps = 0.05;
        let mut gk = GkSummary::new(eps);
        let mut values = vec![];
        for i in 0..5000 {
            let v = f64::from(i % 10);
            gk.insert(v);
            values.push(v);
        }
        assert_rank_error_bounded(&mut values, &mut gk, eps);
    }

    #[test]
    fn clear_resets() {
        let mut gk = GkSummary::new(0.1);
        gk.insert(1.0);
        gk.clear();
        assert_eq!(gk.count(), 0);
        assert_eq!(gk.query(0.5), None);
    }

    #[test]
    fn min_max_always_exact() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut gk = GkSummary::new(0.02);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-1000.0..1000.0);
            gk.insert(v);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert_eq!(gk.query(0.0), Some(lo));
        // The max is reachable at q→1.
        assert_eq!(gk.query(0.999_999_9), Some(hi));
    }

    #[test]
    #[should_panic(expected = "epsilon must be")]
    fn invalid_epsilon_rejected() {
        let _ = GkSummary::new(0.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_rank_error_within_bound(values in proptest::collection::vec(-1e4f64..1e4, 100..2000)) {
            let eps = 0.05;
            let mut gk = GkSummary::new(eps);
            for &v in &values {
                gk.insert(v);
            }
            let mut sorted = values.clone();
            assert_rank_error_bounded(&mut sorted, &mut gk, eps);
        }
    }
}
