//! Single-key quantile summaries — the substrate behind the paper's
//! baselines and the "holistic approach" comparators of §II-B.
//!
//! Every structure here answers rank/quantile queries over one value stream:
//!
//! * [`exact`] — a sorted-buffer oracle with zero error, used as ground
//!   truth by tests and by the exact detector.
//! * [`gk`] — the Greenwald–Khanna summary (SIGMOD 2001), the
//!   deterministic ε-approximate summary SQUAD builds on. Queries binary
//!   search the summary, which is precisely the "offline query" cost the
//!   paper contrasts with QuantileFilter's constant time.
//! * [`kll`] — the KLL sketch (Karnin–Lang–Liberty, FOCS 2016), a
//!   randomized mergeable summary with optimal space.
//! * [`tdigest`] — Dunning & Ertl's merging t-digest, accurate at the tails.
//! * [`ddsketch`] — the DDSketch (Masson–Rim–Lee, VLDB 2019) with
//!   relative-error log-γ buckets; its bucket layout is also reused by the
//!   SketchPolymer- and HistSketch-style baselines.
//!
//! All types implement [`QuantileSummary`] so the baselines can be generic
//! over the summary engine.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ddsketch;
pub mod exact;
pub mod gk;
pub mod kll;
pub mod qdigest;
pub mod tdigest;

pub use ddsketch::DdSketch;
pub use exact::ExactQuantiles;
pub use gk::GkSummary;
pub use kll::KllSketch;
pub use qdigest::QDigest;
pub use tdigest::TDigest;

/// A summary of a single value stream answering quantile queries.
pub trait QuantileSummary {
    /// Insert one observation.
    fn insert(&mut self, value: f64);

    /// Number of observations inserted.
    fn count(&self) -> u64;

    /// Approximate `q`-quantile (`q ∈ [0, 1)`), or `None` if empty.
    ///
    /// Follows the paper's Definition 2: the item whose rank is
    /// `⌊q·n⌋` in the sorted order.
    fn query(&mut self, q: f64) -> Option<f64>;

    /// Reset to empty.
    fn clear(&mut self);

    /// Approximate heap footprint in bytes.
    fn memory_bytes(&self) -> usize;

    /// Short name for experiment logs.
    fn kind_name(&self) -> &'static str;
}

/// Clamp a quantile argument into `[0, 1)` the way Definition 2 requires.
#[inline]
pub(crate) fn clamp_q(q: f64) -> f64 {
    if q < 0.0 {
        0.0
    } else if q >= 1.0 {
        0.999_999_999
    } else {
        q
    }
}

/// Target rank for a `q`-quantile over `n` items (Definition 2: `⌊q·n⌋`,
/// 0-based, clamped to the last index).
#[inline]
pub(crate) fn target_rank(q: f64, n: u64) -> u64 {
    ((clamp_q(q) * n as f64).floor() as u64).min(n.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_q_bounds() {
        assert_eq!(clamp_q(-0.5), 0.0);
        assert_eq!(clamp_q(0.5), 0.5);
        assert!(clamp_q(1.0) < 1.0);
    }

    #[test]
    fn target_rank_matches_definition() {
        // n = 3, q = 0.5 → index 1 (the paper's Figure 1 example: the
        // 0.5-quantile of {1,5,9} is 5).
        assert_eq!(target_rank(0.5, 3), 1);
        // n = 8, q = 0.8 → ⌊6.4⌋ = 6 (the noise example: 7th lowest,
        // 1-indexed).
        assert_eq!(target_rank(0.8, 8), 6);
        // never exceeds n−1
        assert_eq!(target_rank(0.99, 1), 0);
    }
}
