//! DDSketch (Masson, Rim & Lee — VLDB 2019): quantiles with *relative*
//! error guarantees via logarithmic buckets.
//!
//! Values are binned by `i = ⌈log_γ(v)⌉` with `γ = (1+α)/(1−α)`; any value
//! returned for a quantile is within a factor `(1±α)` of the true one.
//! Besides serving as a baseline summary, the log-bucket layout is reused
//! by the SketchPolymer- and HistSketch-style detectors, which both
//! discretize values into logarithmic histograms.

use crate::{clamp_q, QuantileSummary};
use std::collections::BTreeMap;

/// A DDSketch with relative accuracy `alpha` and a bucket-count cap.
#[derive(Debug, Clone)]
pub struct DdSketch {
    /// Bucket index → count, for positive values.
    buckets: BTreeMap<i32, u64>,
    /// Count of values ≤ `min_positive` (zeros and tiny values).
    zero_count: u64,
    gamma: f64,
    ln_gamma: f64,
    /// Values below this are lumped into the zero bucket.
    min_positive: f64,
    /// Maximum number of buckets before the lowest collapse together.
    max_buckets: usize,
    count: u64,
}

impl DdSketch {
    /// Create a sketch with relative accuracy `alpha` (e.g. 0.01 = 1%) and
    /// at most `max_buckets` live buckets.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` and `max_buckets ≥ 16`.
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(max_buckets >= 16, "need at least 16 buckets");
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            buckets: BTreeMap::new(),
            zero_count: 0,
            gamma,
            ln_gamma: gamma.ln(),
            min_positive: 1e-9,
            max_buckets,
            count: 0,
        }
    }

    /// The relative-accuracy parameter implied by γ.
    pub fn alpha(&self) -> f64 {
        (self.gamma - 1.0) / (self.gamma + 1.0)
    }

    /// Bucket index for a positive value.
    #[inline]
    fn index_of(&self, v: f64) -> i32 {
        (v.ln() / self.ln_gamma).ceil() as i32
    }

    /// Representative value of a bucket: the γ-geometric midpoint, within
    /// `(1±α)` of every value the bucket can hold.
    #[inline]
    fn value_of(&self, index: i32) -> f64 {
        2.0 * self.gamma.powi(index) / (self.gamma + 1.0)
    }

    /// Number of live buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Merge another DDSketch with the same γ into this one — bucket
    /// counts add directly (the "fully mergeable" property of the title).
    ///
    /// # Panics
    /// Panics if the relative-accuracy parameters differ.
    pub fn merge(&mut self, other: &DdSketch) {
        assert!(
            (self.gamma - other.gamma).abs() < 1e-12,
            "cannot merge DDSketches with different gamma"
        );
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.count += other.count;
        self.collapse_if_needed();
    }

    /// Collapse the lowest buckets into one when over budget, as in the
    /// original paper (accuracy is sacrificed at the *bottom*, preserving
    /// the tail quantiles that matter for latency monitoring).
    fn collapse_if_needed(&mut self) {
        while self.buckets.len() > self.max_buckets {
            let mut it = self.buckets.iter();
            let (Some((&lowest, &c0)), Some((&second, _))) = (it.next(), it.next()) else {
                // len > max_buckets ≥ 1 implies at least two buckets.
                break;
            };
            self.buckets.remove(&lowest);
            *self.buckets.entry(second).or_insert(0) += c0;
        }
    }
}

impl QuantileSummary for DdSketch {
    fn insert(&mut self, value: f64) {
        debug_assert!(!value.is_nan());
        self.count += 1;
        if value <= self.min_positive {
            self.zero_count += 1;
            return;
        }
        let idx = self.index_of(value);
        *self.buckets.entry(idx).or_insert(0) += 1;
        self.collapse_if_needed();
    }

    fn count(&self) -> u64 {
        self.count
    }

    fn query(&mut self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (clamp_q(q) * self.count as f64).floor() as u64;
        if target < self.zero_count {
            return Some(0.0);
        }
        let mut acc = self.zero_count;
        for (&idx, &c) in &self.buckets {
            acc += c;
            if acc > target {
                return Some(self.value_of(idx));
            }
        }
        // Numerical edge: return the top bucket.
        self.buckets.keys().next_back().map(|&i| self.value_of(i))
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.zero_count = 0;
        self.count = 0;
    }

    fn memory_bytes(&self) -> usize {
        // BTreeMap node overhead approximated at 1.5x payload.
        self.buckets.len() * (core::mem::size_of::<(i32, u64)>() * 3 / 2)
    }

    fn kind_name(&self) -> &'static str {
        "DDSketch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_guarantee_uniform() {
        use rand::prelude::*;
        let alpha = 0.02;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut dd = DdSketch::new(alpha, 2048);
        let mut values = vec![];
        for _ in 0..50_000 {
            let v = rng.gen_range(1.0..1e6);
            dd.insert(v);
            values.push(v);
        }
        values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.1, 0.5, 0.9, 0.95, 0.99] {
            let est = dd.query(q).unwrap();
            let truth = values[(q * values.len() as f64) as usize];
            let rel = (est - truth).abs() / truth;
            assert!(rel <= alpha * 1.5 + 1e-9, "q={q} rel err {rel}");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DdSketch::new(0.02, 512);
        let mut b = DdSketch::new(0.02, 512);
        for v in 1..=1000 {
            a.insert(f64::from(v));
        }
        for v in 1001..=2000 {
            b.insert(f64::from(v));
        }
        a.merge(&b);
        assert_eq!(a.count(), 2000);
        let median = a.query(0.5).unwrap();
        assert!((median - 1000.0).abs() / 1000.0 < 0.05, "median {median}");
    }

    #[test]
    #[should_panic(expected = "different gamma")]
    fn merge_mismatched_gamma_rejected() {
        let mut a = DdSketch::new(0.02, 64);
        let b = DdSketch::new(0.05, 64);
        a.merge(&b);
    }

    #[test]
    fn zero_values_counted() {
        let mut dd = DdSketch::new(0.01, 128);
        for _ in 0..10 {
            dd.insert(0.0);
        }
        dd.insert(100.0);
        assert_eq!(dd.query(0.5), Some(0.0));
        assert!(dd.query(0.95).unwrap() > 90.0);
    }

    #[test]
    fn bucket_budget_respected() {
        let mut dd = DdSketch::new(0.005, 64);
        for v in 1..100_000 {
            dd.insert(f64::from(v));
        }
        assert!(dd.bucket_count() <= 64);
        // Tail must survive the collapse.
        let p99 = dd.query(0.99).unwrap();
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.02, "p99 {p99}");
    }

    #[test]
    fn alpha_round_trip() {
        let dd = DdSketch::new(0.03, 128);
        assert!((dd.alpha() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn representative_value_within_band() {
        let dd = DdSketch::new(0.01, 128);
        for v in [1.5, 20.0, 333.3, 1e6] {
            let idx = dd.index_of(v);
            let rep = dd.value_of(idx);
            assert!((rep - v).abs() / v <= 0.011, "v={v} rep={rep}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut dd = DdSketch::new(0.05, 64);
        dd.insert(3.0);
        dd.clear();
        assert_eq!(dd.count(), 0);
        assert_eq!(dd.query(0.5), None);
    }

    #[test]
    fn counts_track_inserts() {
        let mut dd = DdSketch::new(0.02, 128);
        for i in 0..500 {
            dd.insert(f64::from(i));
        }
        assert_eq!(dd.count(), 500);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn prop_relative_error_bound(values in proptest::collection::vec(0.1f64..1e5, 50..500), q in 0.0f64..0.99) {
            let alpha = 0.05;
            let mut dd = DdSketch::new(alpha, 4096);
            for &v in &values {
                dd.insert(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            let truth = sorted[((q * sorted.len() as f64).floor() as usize).min(sorted.len()-1)];
            let est = dd.query(q).unwrap();
            let rel = (est - truth).abs() / truth;
            proptest::prop_assert!(rel <= alpha * 1.2 + 1e-9, "rel err {}", rel);
        }
    }
}
