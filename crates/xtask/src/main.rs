//! `cargo xtask` — workspace automation without external tooling.
//!
//! Subcommands:
//!
//! * `lint` — run the qf-lint rules over the workspace; exits non-zero on
//!   any diagnostic.
//! * `lint --self-test` — run the linter against seeded violations and
//!   verify every rule fires (the linter's own regression gate).
//! * `lint --bless` — re-record the snapshot wire-format fingerprint
//!   after a legitimate change (bump `SNAPSHOT_VERSION` first if the
//!   encoding itself changed).
//! * `model` — run the exhaustive concurrency model checks: rebuilds
//!   qf-model/qf-trace/qf-pipeline with `--cfg qf_model` (switching the
//!   qf-sync shim to its instrumented face) and runs their test suites,
//!   which include the litmus battery, the three protocol harnesses,
//!   and the seeded-bug self-tests. Extra arguments pass through to
//!   `cargo test` (e.g. `cargo xtask model fifo` to filter).
//!
//! The alias lives in `.cargo/config.toml`; the binary itself has no
//! dependencies beyond `qf-lint`, so it builds in seconds on a bare
//! toolchain.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("model") => model_check(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask command `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--bless] [--self-test]");
    eprintln!("       cargo xtask model [cargo-test args...]");
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

/// `cargo xtask model` — the model-check entry point.
///
/// Injects `--cfg qf_model` into `RUSTFLAGS` (keeping whatever else is
/// already there) and runs the three model-mode test suites. The cfg
/// swaps the qf-sync shim from std re-exports to the instrumented
/// explorer types, so the exact protocol code that ships is what gets
/// exhaustively interleaved — there is no separate "model copy".
fn model_check(extra: &[String]) -> ExitCode {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("--cfg qf_model") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg qf_model");
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = std::process::Command::new(cargo)
        .arg("test")
        .args(["-p", "qf-model", "-p", "qf-trace", "-p", "qf-pipeline"])
        .args(extra)
        .env("RUSTFLAGS", rustflags)
        .current_dir(workspace_root())
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("qf-model: every explored interleaving upholds the protocol contracts");
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask model: failed to run cargo: {e}");
            ExitCode::from(2)
        }
    }
}

fn lint(flags: &[String]) -> ExitCode {
    let mut bless = false;
    let mut self_test = false;
    for flag in flags {
        match flag.as_str() {
            "--bless" => bless = true,
            "--self-test" => self_test = true,
            other => {
                eprintln!("unknown lint flag `{other}`");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();

    if self_test {
        return match qf_lint::self_test() {
            Ok(()) => {
                println!("qf-lint self-test: every rule fires on its seeded violation");
                ExitCode::SUCCESS
            }
            Err(failures) => {
                eprintln!("qf-lint self-test FAILED:");
                for f in &failures {
                    eprintln!("  {f}");
                }
                ExitCode::FAILURE
            }
        };
    }

    if bless {
        match qf_lint::bless(&root) {
            Ok(record) => {
                println!(
                    "blessed {}: version {} fingerprint {:#018x}",
                    qf_lint::fingerprint::FP_RECORD,
                    record.version,
                    record.fingerprint
                );
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                return ExitCode::from(2);
            }
        }
    }

    match qf_lint::lint_workspace(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            println!("qf-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                eprintln!("{d}");
            }
            eprintln!("qf-lint: {} diagnostic(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("qf-lint: io error: {e}");
            ExitCode::from(2)
        }
    }
}
