//! qf-bench: criterion benches, figure-regeneration binaries, the
//! hot-path A/B harness ([`hotpath`]) that measures the one-pass insert
//! rewrite against a faithful reconstruction of the pre-refactor flow,
//! and the live-pipeline throughput harness ([`pipeline`]).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod hotpath;
pub mod pipeline;
