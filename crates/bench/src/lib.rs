//! (under construction)
