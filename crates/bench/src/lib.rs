//! (under construction)

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
