//! qf-bench: criterion benches, figure-regeneration binaries, the
//! hot-path A/B harness ([`hotpath`]) that measures the one-pass insert
//! rewrite against a faithful reconstruction of the pre-refactor flow,
//! the live-pipeline throughput harness ([`pipeline`]), and the
//! self-healing harness ([`chaos`]) that prices supervision overhead and
//! restart latency.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chaos;
pub mod hotpath;
pub mod metrics;
pub mod pipeline;
