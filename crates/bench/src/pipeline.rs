//! The live-pipeline throughput harness behind the `pipeline` bin.
//!
//! One measurement streams a trace through a freshly-launched
//! `qf-pipeline` (router → SPSC queues → per-shard workers → mpsc sink)
//! and times two phases separately:
//!
//! * **offered** — the router-side ingest loop alone. Under
//!   [`BackpressurePolicy::Block`] this is the rate the pipeline
//!   *sustains at the front door* (full queues stall the router); under
//!   [`BackpressurePolicy::DropNewest`] it is the rate the caller can
//!   offer with bounded latency, with the drop rate as the overload
//!   signal.
//! * **sustained** — items actually applied to the shard filters over
//!   the whole run including the drain, i.e. end-to-end detector
//!   throughput.
//!
//! The per-run accounting comes straight from the pipeline's own
//! [`PipelineSummary`], so every point re-checks the conservation law
//! `offered == enqueued + dropped` before it is rendered. Results render
//! as the `BENCH_pipeline.json` schema documented on [`render_json`].

use qf_datasets::Item;
use qf_pipeline::{BackpressurePolicy, Pipeline, PipelineConfig, PipelineError};
use std::collections::HashSet;
use std::time::Instant;

/// The JSON name of a backpressure policy.
pub fn policy_name(policy: BackpressurePolicy) -> &'static str {
    match policy {
        BackpressurePolicy::Block => "block",
        BackpressurePolicy::DropNewest => "drop_newest",
        BackpressurePolicy::DropOldest => "drop_oldest",
        BackpressurePolicy::ShedFair => "shed_fair",
    }
}

/// Cores available to this process (`available_parallelism`), the
/// denominator of every oversubscription verdict. Falls back to 1 when
/// the platform cannot say — the conservative reading.
pub fn detect_nproc() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// One timed pipeline run (the best-of-repeats winner), with the
/// pipeline's own conservation accounting carried along.
#[derive(Debug, Clone, Copy)]
pub struct PipelineMeasurement {
    /// Shard / worker count.
    pub shards: usize,
    /// `"block"`, `"drop_newest"`, `"drop_oldest"`, or `"shed_fair"`.
    pub policy: &'static str,
    /// Router slab capacity the point was measured with.
    pub slab_capacity: usize,
    /// `true` when the measuring host had fewer cores than
    /// `shards + 1` (router + one worker per shard): the point measures
    /// time-sharing, not scaling, and must not be read as scaling data.
    pub oversubscribed: bool,
    /// Items offered at the router.
    pub offered: u64,
    /// Items accepted onto shard queues.
    pub enqueued: u64,
    /// Incoming items shed at the router (always 0 under `block`).
    pub dropped: u64,
    /// Items applied to shard filters.
    pub processed: u64,
    /// Oldest-item drops redeemed by workers (only nonzero under
    /// `drop_oldest` / `shed_fair`).
    pub shed: u64,
    /// Distinct reported keys.
    pub reported_keys: u64,
    /// Wall-clock seconds of the ingest loop alone.
    pub ingest_seconds: f64,
    /// Wall-clock seconds from first ingest through drained shutdown.
    pub total_seconds: f64,
}

impl PipelineMeasurement {
    /// Million items offered at the router per second of ingest.
    pub fn offered_mops(&self) -> f64 {
        if self.ingest_seconds <= 0.0 {
            return 0.0;
        }
        self.offered as f64 / self.ingest_seconds / 1e6
    }

    /// Million items applied to filters per second, end to end.
    pub fn sustained_mops(&self) -> f64 {
        if self.total_seconds <= 0.0 {
            return 0.0;
        }
        self.processed as f64 / self.total_seconds / 1e6
    }

    /// Fraction of offered items shed at the router.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.offered as f64
    }
}

/// Run `items` through a pipeline built from `config`, `repeats` times,
/// and keep the fastest end-to-end run. Each repeat launches a fresh
/// pipeline (thread spawn and filter construction stay outside the
/// ingest timing but inside no timing at all).
///
/// Each point records whether the host had enough cores for the
/// topology (`nproc >= shards + 1`, router plus one worker per shard);
/// when it did not, the point is tagged `oversubscribed` so 1-core
/// numbers stop masquerading as scaling data.
pub fn measure_pipeline(
    config: PipelineConfig,
    items: &[Item],
    repeats: usize,
) -> Result<PipelineMeasurement, PipelineError> {
    let mut best: Option<PipelineMeasurement> = None;
    for _ in 0..repeats.max(1) {
        let mut pipe = Pipeline::launch(config)?;
        let mut reported = HashSet::new();
        let t0 = Instant::now();
        for it in items {
            pipe.ingest(it.key, it.value)?;
        }
        let ingest_seconds = t0.elapsed().as_secs_f64();
        for ev in pipe.poll_reports() {
            reported.insert(ev.key);
        }
        let summary = pipe.shutdown()?;
        let total_seconds = t0.elapsed().as_secs_f64();
        for ev in &summary.reports {
            reported.insert(ev.key);
        }
        let m = PipelineMeasurement {
            shards: config.shards,
            policy: policy_name(config.policy),
            slab_capacity: config.slab_capacity,
            oversubscribed: detect_nproc() < config.shards + 1,
            offered: summary.offered,
            enqueued: summary.enqueued,
            dropped: summary.dropped,
            processed: summary.processed,
            shed: summary.shed,
            reported_keys: reported.len() as u64,
            ingest_seconds,
            total_seconds,
        };
        if m.offered != m.enqueued + m.dropped {
            return Err(PipelineError::InvalidConfig {
                reason: format!(
                    "conservation violated: offered {} != enqueued {} + dropped {}",
                    m.offered, m.enqueued, m.dropped
                ),
            });
        }
        if m.enqueued != m.processed + m.shed {
            return Err(PipelineError::InvalidConfig {
                reason: format!(
                    "conservation violated: enqueued {} != processed {} + shed {}",
                    m.enqueued, m.processed, m.shed
                ),
            });
        }
        if best
            .as_ref()
            .is_none_or(|b| m.total_seconds < b.total_seconds)
        {
            best = Some(m);
        }
    }
    match best {
        Some(m) => Ok(m),
        // Unreachable (repeats is clamped to ≥ 1), but the harness is
        // under the workspace unwrap ban like everything else.
        None => Err(PipelineError::InvalidConfig {
            reason: "no repeats executed".into(),
        }),
    }
}

/// The trace a report was measured on.
#[derive(Debug, Clone)]
pub struct WorkloadMeta {
    /// Workload name ("zipf").
    pub name: String,
    /// Stream length.
    pub items: usize,
    /// Distinct keys present.
    pub keys: u64,
    /// Value threshold `T` used by the criteria.
    pub threshold: f64,
}

/// A full harness run, renderable as `BENCH_pipeline.json`.
#[derive(Debug, Clone)]
pub struct PipelineBenchReport {
    /// "full" or "tiny" (the CI smoke mode).
    pub mode: String,
    /// `available_parallelism` of the measuring host.
    pub nproc: usize,
    /// Best-of repeats per point.
    pub repeats: usize,
    /// Slots per shard queue.
    pub queue_capacity: usize,
    /// Router slab capacity (items buffered per shard before one slab
    /// travels as a single ring slot).
    pub slab_capacity: usize,
    /// Memory budget per shard filter.
    pub memory_bytes_per_shard: usize,
    /// The measured trace.
    pub workload: WorkloadMeta,
    /// One point per (shards, policy) pair.
    pub points: Vec<PipelineMeasurement>,
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0".into()
    }
}

/// Render the report as the `BENCH_pipeline.json` document (schema v2:
/// slab-handoff pipeline, with per-point oversubscription tagging):
///
/// ```json
/// {
///   "schema": "qf-bench-pipeline/v2",
///   "mode": "full",                  // or "tiny" (CI smoke)
///   "nproc": 8,                      // cores on the measuring host
///   "repeats": 3,                    // best-of repeats per point
///   "queue_capacity": 1024,          // slab slots per shard queue
///   "slab_capacity": 256,            // items per router slab
///   "memory_bytes_per_shard": 32768,
///   "workload": {"name": "zipf", "items": 2000000, "keys": 120000,
///                "threshold": 300.0},
///   "points": [{
///     "shards": 1, "policy": "block",
///     "slab_capacity": 256,          // this point's slab size
///     "oversubscribed": false,       // nproc < shards + 1: not scaling data
///     "offered_mops": 9.0,           // router-side ingest rate
///     "sustained_mops": 8.5,         // filter-applied rate, incl. drain
///     "drop_rate": 0.0,              // dropped / offered
///     "offered": 2000000, "enqueued": 2000000, "dropped": 0,
///     "processed": 2000000, "shed": 0, "reported_keys": 77
///   }, ...]
/// }
/// ```
pub fn render_json(report: &PipelineBenchReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"qf-bench-pipeline/v2\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    out.push_str(&format!("  \"nproc\": {},\n", report.nproc));
    out.push_str(&format!("  \"repeats\": {},\n", report.repeats));
    out.push_str(&format!(
        "  \"queue_capacity\": {},\n",
        report.queue_capacity
    ));
    out.push_str(&format!("  \"slab_capacity\": {},\n", report.slab_capacity));
    out.push_str(&format!(
        "  \"memory_bytes_per_shard\": {},\n",
        report.memory_bytes_per_shard
    ));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"items\": {}, \"keys\": {}, \"threshold\": {}}},\n",
        report.workload.name,
        report.workload.items,
        report.workload.keys,
        num(report.workload.threshold)
    ));
    out.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"shards\": {},\n", p.shards));
        out.push_str(&format!("      \"policy\": \"{}\",\n", p.policy));
        out.push_str(&format!("      \"slab_capacity\": {},\n", p.slab_capacity));
        out.push_str(&format!(
            "      \"oversubscribed\": {},\n",
            p.oversubscribed
        ));
        out.push_str(&format!(
            "      \"offered_mops\": {},\n",
            num(p.offered_mops())
        ));
        out.push_str(&format!(
            "      \"sustained_mops\": {},\n",
            num(p.sustained_mops())
        ));
        out.push_str(&format!("      \"drop_rate\": {},\n", num(p.drop_rate())));
        out.push_str(&format!("      \"offered\": {},\n", p.offered));
        out.push_str(&format!("      \"enqueued\": {},\n", p.enqueued));
        out.push_str(&format!("      \"dropped\": {},\n", p.dropped));
        out.push_str(&format!("      \"processed\": {},\n", p.processed));
        out.push_str(&format!("      \"shed\": {},\n", p.shed));
        out.push_str(&format!("      \"reported_keys\": {}\n", p.reported_keys));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use quantile_filter::Criteria;

    fn criteria() -> Criteria {
        match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("criteria: {e}"),
        }
    }

    fn trace(len: usize, keys: u64, seed: u64) -> Vec<Item> {
        let mut rng = qf_hash::SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let key = rng.next_u64() % keys;
                let value = if rng.next_u64() % 100 < 30 {
                    500.0
                } else {
                    5.0
                };
                Item { key, value }
            })
            .collect()
    }

    fn config(shards: usize, policy: BackpressurePolicy, queue_capacity: usize) -> PipelineConfig {
        PipelineConfig {
            shards,
            criteria: criteria(),
            memory_bytes_per_shard: 16 * 1024,
            queue_capacity,
            slab_capacity: 64,
            policy,
            seed: 0,
        }
    }

    #[test]
    fn block_policy_measures_losslessly() {
        let items = trace(20_000, 500, 5);
        let m = match measure_pipeline(config(2, BackpressurePolicy::Block, 64), &items, 2) {
            Ok(m) => m,
            Err(e) => panic!("measure: {e}"),
        };
        assert_eq!(m.offered, 20_000);
        assert_eq!(m.dropped, 0);
        assert_eq!(m.processed, 20_000);
        assert!(m.reported_keys > 0, "trace too tame to exercise reports");
        assert!(m.total_seconds >= m.ingest_seconds * 0.99);
        assert!((m.drop_rate() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn drop_policy_conserves_offered_items() {
        // A 2-slot queue under a full-speed router must shed load; the
        // measurement's own conservation check re-verifies the split.
        let items = trace(20_000, 500, 6);
        let m = match measure_pipeline(config(1, BackpressurePolicy::DropNewest, 2), &items, 1) {
            Ok(m) => m,
            Err(e) => panic!("measure: {e}"),
        };
        assert_eq!(m.offered, 20_000);
        assert_eq!(m.offered, m.enqueued + m.dropped);
        assert_eq!(m.processed, m.enqueued, "drained shutdown processes all");
        assert_eq!(m.policy, "drop_newest");
    }

    #[test]
    fn drop_oldest_policy_sheds_with_exact_accounting() {
        // Same overload shape as above, but the loss shows up as worker
        // sheds (oldest items discarded) and/or router drops when the
        // worker can't free a slot in the bounded window; both sides of
        // the split are checked by measure_pipeline itself.
        let items = trace(20_000, 500, 7);
        let m = match measure_pipeline(config(1, BackpressurePolicy::DropOldest, 2), &items, 1) {
            Ok(m) => m,
            Err(e) => panic!("measure: {e}"),
        };
        assert_eq!(m.offered, 20_000);
        assert_eq!(m.offered, m.enqueued + m.dropped);
        assert_eq!(m.enqueued, m.processed + m.shed);
        assert_eq!(m.policy, "drop_oldest");
    }

    #[test]
    fn rendered_json_is_balanced_and_complete() {
        let point = PipelineMeasurement {
            shards: 4,
            policy: "block",
            slab_capacity: 256,
            oversubscribed: true,
            offered: 1000,
            enqueued: 1000,
            dropped: 0,
            processed: 1000,
            shed: 0,
            reported_keys: 7,
            ingest_seconds: 0.001,
            total_seconds: 0.002,
        };
        let report = PipelineBenchReport {
            mode: "tiny".into(),
            nproc: 8,
            repeats: 1,
            queue_capacity: 1024,
            slab_capacity: 256,
            memory_bytes_per_shard: 32 * 1024,
            workload: WorkloadMeta {
                name: "zipf".into(),
                items: 1000,
                keys: 100,
                threshold: 300.0,
            },
            points: vec![
                point,
                PipelineMeasurement {
                    policy: "drop_newest",
                    dropped: 250,
                    enqueued: 750,
                    processed: 750,
                    ..point
                },
            ],
        };
        let json = render_json(&report);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in:\n{json}"
            );
        }
        for key in [
            "\"qf-bench-pipeline/v2\"",
            "\"queue_capacity\": 1024",
            "\"slab_capacity\": 256",
            "\"oversubscribed\": true",
            "\"nproc\": 8",
            "\"policy\": \"block\"",
            "\"policy\": \"drop_newest\"",
            "\"offered_mops\"",
            "\"sustained_mops\"",
            "\"drop_rate\": 0.250",
            "\"reported_keys\": 7",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",}"));
    }

    #[test]
    fn rate_math() {
        let m = PipelineMeasurement {
            shards: 1,
            policy: "block",
            slab_capacity: 1,
            oversubscribed: false,
            offered: 2_000_000,
            enqueued: 1_500_000,
            dropped: 500_000,
            processed: 1_500_000,
            shed: 0,
            reported_keys: 0,
            ingest_seconds: 0.5,
            total_seconds: 1.0,
        };
        assert!((m.offered_mops() - 4.0).abs() < 1e-9);
        assert!((m.sustained_mops() - 1.5).abs() < 1e-9);
        assert!((m.drop_rate() - 0.25).abs() < 1e-9);
        let zero = PipelineMeasurement {
            ingest_seconds: 0.0,
            total_seconds: 0.0,
            offered: 0,
            ..m
        };
        assert_eq!(zero.offered_mops(), 0.0);
        assert_eq!(zero.sustained_mops(), 0.0);
        assert_eq!(zero.drop_rate(), 0.0);
    }
}
