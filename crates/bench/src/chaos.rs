//! The self-healing-pipeline harness behind the `chaos` bin.
//!
//! Two questions, measured separately:
//!
//! * **What does supervision cost when nothing goes wrong?** The same
//!   trace is streamed through an unsupervised pipeline and a supervised
//!   one (checkpointing + journaling on, zero faults); the overhead is
//!   the relative throughput delta. The acceptance budget is 10%.
//! * **How fast is recovery when something does?** A poison key is
//!   injected at evenly spaced points of the trace, each delivery
//!   killing its worker; the supervisor's own [`RecoveryRecord`]s give
//!   the restart latency distribution (p50/p99/max) plus the replay and
//!   loss totals.
//!
//! Results render as the `BENCH_chaos.json` schema documented on
//! [`render_json`].

use crate::pipeline::{measure_pipeline, PipelineMeasurement};
use qf_datasets::Item;
use qf_pipeline::{
    ChaosPlan, Fault, Pipeline, PipelineConfig, PipelineError, RecoveryRecord, SupervisorConfig,
};
use qf_telemetry::LogHistogram;
use std::time::Instant;

/// One shard point of the no-fault overhead comparison.
#[derive(Debug, Clone, Copy)]
pub struct OverheadPoint {
    /// Shard / worker count.
    pub shards: usize,
    /// End-to-end Mops without supervision (the PR-5 baseline path).
    pub baseline_mops: f64,
    /// End-to-end Mops with checkpointing + journaling on, zero faults.
    pub supervised_mops: f64,
    /// True when the host had fewer cores than `shards + 1` threads, so
    /// both sides of the comparison time-slice instead of running in
    /// parallel. The overhead fraction stays meaningful (both sides are
    /// equally oversubscribed) but the absolute Mops are not a scaling
    /// claim.
    pub oversubscribed: bool,
}

impl OverheadPoint {
    /// Relative throughput lost to supervision (0.1 == 10% slower).
    pub fn overhead_frac(&self) -> f64 {
        if self.baseline_mops <= 0.0 {
            return 0.0;
        }
        (1.0 - self.supervised_mops / self.baseline_mops).max(0.0)
    }
}

/// Restart-latency distribution over one fault-injection run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Recoveries observed (quarantines excluded — none should occur).
    pub samples: usize,
    /// Median restart latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile restart latency, microseconds.
    pub p99_us: u64,
    /// Worst restart latency, microseconds.
    pub max_us: u64,
    /// Journal entries replayed across all recoveries.
    pub replayed_total: u64,
    /// Items lost to crash windows across the whole run (accounted).
    pub lost_total: u64,
    /// Items applied end to end despite the crashes.
    pub processed: u64,
}

/// Distill restart latencies through the same [`LogHistogram`] the rest
/// of the stack uses for latency distributions (one estimator, one error
/// model: quantiles are bucket upper bounds, ≤25% relative error; `max`
/// is exact, and quantile estimates are clamped to it so the reported
/// distribution is internally consistent).
fn latency_stats(latencies_us: impl IntoIterator<Item = u64>) -> (usize, u64, u64, u64) {
    let hist = LogHistogram::new();
    for us in latencies_us {
        hist.record(us);
    }
    let snap = hist.snapshot();
    let max = snap.max;
    (
        snap.count() as usize,
        snap.quantile(0.50).min(max),
        snap.quantile(0.99).min(max),
        max,
    )
}

/// Stream `items` through a *supervised* pipeline with no faults and
/// time it like [`measure_pipeline`] does, keeping the fastest of
/// `repeats` runs.
pub fn measure_supervised(
    config: PipelineConfig,
    sup: SupervisorConfig,
    items: &[Item],
    repeats: usize,
) -> Result<PipelineMeasurement, PipelineError> {
    let mut best: Option<PipelineMeasurement> = None;
    for _ in 0..repeats.max(1) {
        let mut pipe = Pipeline::launch_supervised(config, sup)?;
        let t0 = Instant::now();
        for it in items {
            pipe.ingest(it.key, it.value)?;
        }
        let ingest_seconds = t0.elapsed().as_secs_f64();
        let summary = pipe.shutdown()?;
        let total_seconds = t0.elapsed().as_secs_f64();
        if summary.lost_to_crash != 0 || summary.restarts != 0 {
            return Err(PipelineError::InvalidConfig {
                reason: format!(
                    "no-fault supervised run crashed: restarts {} lost {}",
                    summary.restarts, summary.lost_to_crash
                ),
            });
        }
        let m = PipelineMeasurement {
            shards: config.shards,
            slab_capacity: config.slab_capacity,
            oversubscribed: crate::pipeline::detect_nproc() < config.shards + 1,
            policy: crate::pipeline::policy_name(config.policy),
            offered: summary.offered,
            enqueued: summary.enqueued,
            dropped: summary.dropped,
            processed: summary.processed,
            shed: summary.shed,
            reported_keys: 0,
            ingest_seconds,
            total_seconds,
        };
        if best
            .as_ref()
            .is_none_or(|b| m.total_seconds < b.total_seconds)
        {
            best = Some(m);
        }
    }
    best.ok_or_else(|| PipelineError::InvalidConfig {
        reason: "no repeats executed".into(),
    })
}

/// Stream `items` through a supervised pipeline while a poison key kills
/// a worker `crashes` times at evenly spaced points, then distill the
/// supervisor's recovery records. `strike_forgiveness: 1` keeps the
/// strike counter at bay (each crash is separated by real progress), so
/// every fault ends in a restart, never a quarantine.
///
/// The recovery run clamps the queue depth so that at most ~256 items
/// are in flight per shard regardless of `config.slab_capacity`. Slab
/// batching multiplies the ring's in-flight window by the slab size;
/// with a deep queue a short trace fits in the rings entirely and every
/// injected crash defers to the shutdown drain, where it fences
/// terminally instead of restarting — there would be no restart latency
/// to measure. The clamp keeps the router at the workers' pace, so each
/// poison kills a *live* worker mid-trace.
pub fn measure_recovery(
    config: PipelineConfig,
    sup: SupervisorConfig,
    items: &[Item],
    crashes: u32,
) -> Result<RecoveryStats, PipelineError> {
    let config = PipelineConfig {
        queue_capacity: (256 / config.slab_capacity.max(1)).clamp(2, config.queue_capacity.max(2)),
        ..config
    };
    // A key outside every dataset generator's range, so it perturbs
    // nothing but the worker it kills.
    let poison_key = u64::MAX - 1;
    let plan = ChaosPlan::new().with(Fault::Poison {
        key: poison_key,
        times: crashes,
    });
    let sup = SupervisorConfig {
        strike_forgiveness: 1,
        ..sup
    };
    let mut pipe = Pipeline::launch_chaos(config, sup, &plan)?;
    let gap = (items.len() / (crashes.max(1) as usize + 1)).max(1);
    for (i, it) in items.iter().enumerate() {
        if i % gap == gap - 1 {
            pipe.ingest(poison_key, 1.0)?;
        }
        pipe.ingest(it.key, it.value)?;
    }
    let summary = pipe.shutdown()?;
    if summary.offered != summary.enqueued + summary.dropped + summary.rejected
        || summary.enqueued != summary.processed + summary.shed + summary.lost_to_crash
    {
        return Err(PipelineError::InvalidConfig {
            reason: format!("conservation violated under chaos: {summary:?}"),
        });
    }
    let restarts: Vec<&RecoveryRecord> = summary
        .recoveries
        .iter()
        .filter(|r| !r.quarantined)
        .collect();
    let (samples, p50_us, p99_us, max_us) = latency_stats(
        restarts
            .iter()
            .map(|r| r.restart_latency.as_micros() as u64),
    );
    Ok(RecoveryStats {
        samples,
        p50_us,
        p99_us,
        max_us,
        replayed_total: restarts.iter().map(|r| r.replayed).sum(),
        lost_total: summary.lost_to_crash,
        processed: summary.processed,
    })
}

/// A full harness run, renderable as `BENCH_chaos.json`.
#[derive(Debug, Clone)]
pub struct ChaosBenchReport {
    /// "full" or "tiny" (the CI smoke mode).
    pub mode: String,
    /// `available_parallelism` of the measuring host.
    pub nproc: usize,
    /// Best-of repeats per overhead point.
    pub repeats: usize,
    /// Slots per shard queue.
    pub queue_capacity: usize,
    /// Items per handoff slab (one ring slot carries one slab).
    pub slab_capacity: usize,
    /// Checkpoint cadence used by the supervised runs.
    pub checkpoint_interval: u64,
    /// Trace length.
    pub items: usize,
    /// One point per shard count.
    pub overhead: Vec<OverheadPoint>,
    /// The fault-injection distillate.
    pub recovery: RecoveryStats,
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0".into()
    }
}

/// Render the report as the `BENCH_chaos.json` document:
///
/// ```json
/// {
///   "schema": "qf-bench-chaos/v2",
///   "mode": "full",                   // or "tiny" (CI smoke)
///   "nproc": 8,
///   "repeats": 3,
///   "queue_capacity": 1024,
///   "slab_capacity": 256,             // items per handoff slab
///   "checkpoint_interval": 8192,
///   "items": 2000000,
///   "overhead": [{
///     "shards": 1,
///     "baseline_mops": 8.5,           // unsupervised end-to-end rate
///     "supervised_mops": 8.1,         // checkpointing on, zero faults
///     "overhead_frac": 0.047,         // budget: <= 0.10
///     "oversubscribed": false         // nproc < shards + 1 on this host
///   }, ...],
///   "recovery": {
///     "samples": 16,                  // restarts observed
///     "restart_latency_p50_us": 900,
///     "restart_latency_p99_us": 2400,
///     "restart_latency_max_us": 2600,
///     "replayed_total": 131072,       // journal entries replayed
///     "lost_total": 1024,             // accounted crash-window loss
///     "processed": 1998976
///   }
/// }
/// ```
pub fn render_json(report: &ChaosBenchReport) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"qf-bench-chaos/v2\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    out.push_str(&format!("  \"nproc\": {},\n", report.nproc));
    out.push_str(&format!("  \"repeats\": {},\n", report.repeats));
    out.push_str(&format!(
        "  \"queue_capacity\": {},\n",
        report.queue_capacity
    ));
    out.push_str(&format!("  \"slab_capacity\": {},\n", report.slab_capacity));
    out.push_str(&format!(
        "  \"checkpoint_interval\": {},\n",
        report.checkpoint_interval
    ));
    out.push_str(&format!("  \"items\": {},\n", report.items));
    out.push_str("  \"overhead\": [\n");
    for (i, p) in report.overhead.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"baseline_mops\": {}, \"supervised_mops\": {}, \
             \"overhead_frac\": {}, \"oversubscribed\": {}}}{}\n",
            p.shards,
            num(p.baseline_mops),
            num(p.supervised_mops),
            num(p.overhead_frac()),
            p.oversubscribed,
            if i + 1 < report.overhead.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n");
    let r = &report.recovery;
    out.push_str("  \"recovery\": {\n");
    out.push_str(&format!("    \"samples\": {},\n", r.samples));
    out.push_str(&format!("    \"restart_latency_p50_us\": {},\n", r.p50_us));
    out.push_str(&format!("    \"restart_latency_p99_us\": {},\n", r.p99_us));
    out.push_str(&format!("    \"restart_latency_max_us\": {},\n", r.max_us));
    out.push_str(&format!("    \"replayed_total\": {},\n", r.replayed_total));
    out.push_str(&format!("    \"lost_total\": {},\n", r.lost_total));
    out.push_str(&format!("    \"processed\": {}\n", r.processed));
    out.push_str("  }\n}\n");
    out
}

/// Baseline-vs-supervised comparison for one shard count.
pub fn measure_overhead(
    config: PipelineConfig,
    sup: SupervisorConfig,
    items: &[Item],
    repeats: usize,
) -> Result<OverheadPoint, PipelineError> {
    let baseline = measure_pipeline(config, items, repeats)?;
    let supervised = measure_supervised(config, sup, items, repeats)?;
    Ok(OverheadPoint {
        shards: config.shards,
        baseline_mops: baseline.sustained_mops(),
        supervised_mops: supervised.sustained_mops(),
        oversubscribed: baseline.oversubscribed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qf_pipeline::BackpressurePolicy;
    use quantile_filter::Criteria;
    use std::time::Duration;

    fn criteria() -> Criteria {
        match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("criteria: {e}"),
        }
    }

    fn trace(len: usize, keys: u64, seed: u64) -> Vec<Item> {
        let mut rng = qf_hash::SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let key = rng.next_u64() % keys;
                let value = if rng.next_u64() % 100 < 30 {
                    500.0
                } else {
                    5.0
                };
                Item { key, value }
            })
            .collect()
    }

    fn config(shards: usize) -> PipelineConfig {
        PipelineConfig {
            shards,
            criteria: criteria(),
            memory_bytes_per_shard: 16 * 1024,
            queue_capacity: 256,
            slab_capacity: 64,
            policy: BackpressurePolicy::Block,
            seed: 0,
        }
    }

    fn sup() -> SupervisorConfig {
        SupervisorConfig {
            checkpoint_interval: 512,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn latency_stats_are_ordered_and_clamped() {
        assert_eq!(latency_stats([]), (0, 0, 0, 0));
        // A single sample: every statistic collapses to it exactly (the
        // quantile's bucket upper bound is clamped to the true max).
        assert_eq!(latency_stats([700]), (1, 700, 700, 700));
        let (n, p50, p99, max) = latency_stats(1..=1000u64);
        assert_eq!(n, 1000);
        assert_eq!(max, 1000, "max is exact");
        assert!(p50 <= p99 && p99 <= max, "p50={p50} p99={p99} max={max}");
        // LogHistogram's contract: quantiles land within 25% above the
        // true order statistic (bucket upper bounds).
        assert!((500..=625).contains(&p50), "p50={p50}");
        assert!((990..=1000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn overhead_point_measures_both_modes() {
        let items = trace(30_000, 500, 9);
        let p = match measure_overhead(config(2), sup(), &items, 1) {
            Ok(p) => p,
            Err(e) => panic!("measure: {e}"),
        };
        assert_eq!(p.shards, 2);
        assert!(p.baseline_mops > 0.0);
        assert!(p.supervised_mops > 0.0);
        assert!(p.overhead_frac() >= 0.0);
    }

    #[test]
    fn recovery_stats_capture_each_injected_crash() {
        let items = trace(30_000, 500, 10);
        let stats = match measure_recovery(config(2), sup(), &items, 3) {
            Ok(s) => s,
            Err(e) => panic!("measure: {e}"),
        };
        assert_eq!(stats.samples, 3, "every poison delivery must restart");
        assert!(stats.p50_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us);
        assert!(
            stats.lost_total >= 3,
            "each crash loses at least its poison item"
        );
        assert!(stats.processed > 0);
    }

    #[test]
    fn rendered_json_is_balanced_and_complete() {
        let report = ChaosBenchReport {
            mode: "tiny".into(),
            nproc: 8,
            repeats: 1,
            queue_capacity: 256,
            slab_capacity: 64,
            checkpoint_interval: 512,
            items: 1000,
            overhead: vec![
                OverheadPoint {
                    shards: 1,
                    baseline_mops: 8.0,
                    supervised_mops: 7.6,
                    oversubscribed: false,
                },
                OverheadPoint {
                    shards: 2,
                    baseline_mops: 12.0,
                    supervised_mops: 11.5,
                    oversubscribed: true,
                },
            ],
            recovery: RecoveryStats {
                samples: 4,
                p50_us: 900,
                p99_us: 2400,
                max_us: 2600,
                replayed_total: 2048,
                lost_total: 5,
                processed: 995,
            },
        };
        let json = render_json(&report);
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in:\n{json}"
            );
        }
        for key in [
            "\"qf-bench-chaos/v2\"",
            "\"slab_capacity\": 64",
            "\"checkpoint_interval\": 512",
            "\"overhead_frac\": 0.0500",
            "\"oversubscribed\": false",
            "\"oversubscribed\": true",
            "\"restart_latency_p50_us\": 900",
            "\"restart_latency_p99_us\": 2400",
            "\"lost_total\": 5",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert!(!json.contains(",\n  ]"));
    }
}
