//! Generate and save a synthetic workload trace.
//!
//! ```text
//! cargo run -p qf-bench --release --bin gen_trace -- \
//!     --kind internet|cloud|zipf [--items N] [--keys N] [--alpha A] \
//!     [--seed S] [--csv] --out PATH
//! ```
//!
//! Writes the binary `.qftr` format readable by
//! `qf_datasets::trace::read_file` (or CSV with `--csv`) and prints the
//! dataset's provenance line (key count, abnormal fraction).

use qf_datasets::{
    cloud_like, internet_like, trace, zipf_dataset, CloudConfig, Dataset, InternetConfig,
    ZipfConfig,
};

struct Args {
    kind: String,
    items: Option<usize>,
    keys: Option<u64>,
    alpha: Option<f64>,
    seed: Option<u64>,
    csv: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        kind: "internet".into(),
        items: None,
        keys: None,
        alpha: None,
        seed: None,
        csv: false,
        out: String::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--kind" => {
                args.kind = need(i).to_string();
                i += 1;
            }
            "--items" => {
                args.items = Some(need(i).parse().expect("--items wants a number"));
                i += 1;
            }
            "--keys" => {
                args.keys = Some(need(i).parse().expect("--keys wants a number"));
                i += 1;
            }
            "--alpha" => {
                args.alpha = Some(need(i).parse().expect("--alpha wants a float"));
                i += 1;
            }
            "--seed" => {
                args.seed = Some(need(i).parse().expect("--seed wants a number"));
                i += 1;
            }
            "--csv" => args.csv = true,
            "--out" => {
                args.out = need(i).to_string();
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if args.out.is_empty() {
        eprintln!("--out PATH is required");
        std::process::exit(2);
    }
    args
}

fn generate(args: &Args) -> Dataset {
    match args.kind.as_str() {
        "internet" => {
            let mut cfg = InternetConfig::default();
            if let Some(v) = args.items {
                cfg.items = v;
            }
            if let Some(v) = args.keys {
                cfg.keys = v;
            }
            if let Some(v) = args.alpha {
                cfg.alpha = v;
            }
            if let Some(v) = args.seed {
                cfg.seed = v;
            }
            internet_like(&cfg)
        }
        "cloud" => {
            let mut cfg = CloudConfig::default();
            if let Some(v) = args.items {
                cfg.items = v;
            }
            if let Some(v) = args.keys {
                cfg.core_keys = v;
            }
            if let Some(v) = args.seed {
                cfg.seed = v;
            }
            cloud_like(&cfg)
        }
        "zipf" => {
            let mut cfg = ZipfConfig::default();
            if let Some(v) = args.items {
                cfg.items = v;
            }
            if let Some(v) = args.keys {
                cfg.keys = v;
            }
            if let Some(v) = args.alpha {
                cfg.alpha = v;
            }
            if let Some(v) = args.seed {
                cfg.seed = v;
            }
            zipf_dataset(&cfg)
        }
        other => {
            eprintln!("unknown kind {other}; use internet|cloud|zipf");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let dataset = generate(&args);
    println!(
        "{}: {} items, {} keys, {:.2}% abnormal at T={}",
        dataset.name,
        dataset.items.len(),
        dataset.key_count,
        dataset.abnormal_fraction * 100.0,
        dataset.threshold
    );
    if args.csv {
        let f = std::fs::File::create(&args.out).expect("create csv file");
        trace::write_csv(std::io::BufWriter::new(f), &dataset.items).expect("write csv");
    } else {
        trace::write_file(&args.out, &dataset.items, dataset.threshold).expect("write trace");
    }
    println!("wrote {}", args.out);
}
