//! Hot-path throughput harness: current one-pass insert vs. the
//! reconstructed pre-refactor flow, plus sharded-ingest thread scaling.
//!
//! ```text
//! cargo run -p qf-bench --release --bin hotpath -- \
//!     [--tiny] [--out PATH] [--repeats N] [--items N] [--seed S]
//! ```
//!
//! Measures, on Zipf and CAIDA-shaped (internet-like) traces:
//!
//! * single-thread Mops/s of the legacy three-query insert, the current
//!   scalar `insert`, and the batched `insert_batch` (identical report
//!   decisions by construction — the run aborts if they ever differ);
//! * `ShardedDetector::run_parallel` throughput at 1/2/4/8 workers.
//!
//! Writes the results as `BENCH_hotpath.json` (schema documented on
//! `qf_bench::hotpath::render_json`). `--tiny` is the CI smoke mode:
//! 50K-item traces, one repeat, same schema.

use qf_bench::hotpath::{
    measure_batch, measure_legacy, measure_scalar, measure_sharded, HotpathDims, HotpathReport,
    SingleThread, ThreadPoint, WorkloadResult,
};
use qf_bench::pipeline::detect_nproc;
use qf_datasets::{internet_like, zipf_dataset, Dataset, InternetConfig, ZipfConfig};
use quantile_filter::Criteria;

const BATCH_CHUNK: usize = 4096;
const SHARDS: usize = 8;
const SHARD_MEMORY: usize = 32 * 1024;
const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];

fn usage() -> ! {
    eprintln!("usage: hotpath [--tiny] [--out PATH] [--repeats N] [--items N] [--seed S]");
    std::process::exit(2)
}

fn measure_workload(
    dataset: &Dataset,
    seed: u64,
    repeats: usize,
    short_name: &str,
) -> WorkloadResult {
    let criteria = match Criteria::new(30.0, 0.95, dataset.threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad criteria for {short_name}: {e}");
            std::process::exit(1);
        }
    };
    let dims = HotpathDims::paper_32k(seed);
    let pairs: Vec<(u64, f64)> = dataset.items.iter().map(|it| (it.key, it.value)).collect();

    let legacy = measure_legacy(criteria, &dims, &pairs, repeats);
    let scalar = measure_scalar(criteria, &dims, &pairs, repeats);
    let batch = measure_batch(criteria, &dims, &pairs, BATCH_CHUNK, repeats);
    if legacy.reports != scalar.reports || scalar.reports != batch.reports {
        eprintln!(
            "report-count divergence on {short_name}: legacy={} scalar={} batch={} — \
             the A/B comparison is not measuring the same filter",
            legacy.reports, scalar.reports, batch.reports
        );
        std::process::exit(1);
    }
    println!(
        "{short_name}: single-thread legacy {:.2} Mops | scalar {:.2} Mops ({:.2}x) | \
         batch {:.2} Mops ({:.2}x) | {} reports",
        legacy.mops(),
        scalar.mops(),
        scalar.mops() / legacy.mops(),
        batch.mops(),
        batch.mops() / legacy.mops(),
        batch.reports,
    );

    let mut sharded = Vec::new();
    for threads in THREAD_POINTS {
        let m = measure_sharded(
            criteria,
            SHARD_MEMORY,
            SHARDS,
            threads,
            &dataset.items,
            repeats,
        );
        // Same verdict the pipeline bench attaches: fewer host cores than
        // effective workers means the point times time-sharing, not
        // scaling, and the JSON must say so rather than let the curve lie.
        let oversubscribed = detect_nproc() < m.effective_threads;
        println!(
            "{short_name}: sharded x{threads} requested ({} effective) {:.2} Mops, {} reported keys{}",
            m.effective_threads,
            m.measurement.mops(),
            m.measurement.reports,
            if oversubscribed { " | OVERSUBSCRIBED" } else { "" }
        );
        sharded.push(ThreadPoint {
            threads,
            effective_threads: m.effective_threads,
            oversubscribed,
            measurement: m.measurement,
        });
    }

    WorkloadResult {
        name: short_name.to_string(),
        items: dataset.items.len(),
        keys: dataset.key_count,
        threshold: dataset.threshold,
        single: SingleThread {
            legacy,
            scalar,
            batch,
        },
        sharded,
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut out = "BENCH_hotpath.json".to_string();
    let mut repeats: Option<usize> = None;
    let mut items: Option<usize> = None;
    let mut seed = 0xB127_0001u64;

    let mut i = 0;
    while i < argv.len() {
        let val = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--tiny" => tiny = true,
            "--out" => {
                out = val(i);
                i += 1;
            }
            "--repeats" => {
                repeats = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--items" => {
                items = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--seed" => {
                seed = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            _ => usage(),
        }
        i += 1;
    }

    let repeats = repeats.unwrap_or(if tiny { 1 } else { 3 });
    let nproc = detect_nproc();

    // The third trace is the paper's many-keys Zipf variant (§V-A): far
    // more keys than candidate slots, so nearly every insert exercises the
    // vague part — the regime the one-pass rewrite targets.
    let (zipf_cfg, internet_cfg, many_cfg) = if tiny {
        (
            ZipfConfig::tiny(),
            InternetConfig::tiny(),
            ZipfConfig {
                keys: 200_000,
                ..ZipfConfig::tiny()
            },
        )
    } else {
        (
            ZipfConfig::default(),
            InternetConfig::default(),
            ZipfConfig::many_keys(),
        )
    };
    let (zipf_cfg, internet_cfg, many_cfg) = match items {
        Some(n) => (
            ZipfConfig {
                items: n,
                ..zipf_cfg
            },
            InternetConfig {
                items: n,
                ..internet_cfg
            },
            ZipfConfig {
                items: n,
                ..many_cfg
            },
        ),
        None => (zipf_cfg, internet_cfg, many_cfg),
    };

    println!(
        "hotpath: mode={} repeats={repeats} nproc={nproc}",
        if tiny { "tiny" } else { "full" }
    );
    let zipf = zipf_dataset(&zipf_cfg);
    let internet = internet_like(&internet_cfg);
    let many = zipf_dataset(&many_cfg);
    println!(
        "traces: zipf {} items / {} keys; internet {} items / {} keys; zipf-many {} items / {} keys",
        zipf.items.len(),
        zipf.key_count,
        internet.items.len(),
        internet.key_count,
        many.items.len(),
        many.key_count
    );

    let workloads = vec![
        measure_workload(&zipf, seed, repeats, "zipf"),
        measure_workload(&internet, seed, repeats, "internet"),
        measure_workload(&many, seed, repeats, "zipf-many"),
    ];

    let report = HotpathReport {
        mode: if tiny { "tiny" } else { "full" }.to_string(),
        nproc,
        repeats,
        batch_chunk: BATCH_CHUNK,
        workloads,
    };
    let json = qf_bench::hotpath::render_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
