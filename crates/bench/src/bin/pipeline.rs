//! Live-pipeline throughput harness: offered load vs sustained Mops and
//! drop rate across shard counts and backpressure policies.
//!
//! ```text
//! cargo run -p qf-bench --release --bin pipeline -- \
//!     [--tiny] [--out PATH] [--repeats N] [--items N] [--queue N] \
//!     [--slab N] [--metrics-out PREFIX] [--no-metrics]
//! ```
//!
//! For each shard count in {1, 2, 4, 8} and each backpressure policy
//! (`block`, `drop_newest`, `drop_oldest`, `shed_fair`), streams a Zipf
//! trace through a freshly launched `qf-pipeline` and records:
//!
//! * offered Mops — the router-side ingest rate (what the caller sees);
//! * sustained Mops — items applied to shard filters over the whole run
//!   including the drain;
//! * drop rate — items shed at the router under the dropping policies
//!   (always 0 under `block`; the measurement aborts if conservation
//!   `offered == enqueued + dropped` or `enqueued == processed + shed`
//!   ever fails).
//!
//! Writes the results as `BENCH_pipeline.json` (schema v2, documented on
//! `qf_bench::pipeline::render_json`). `--tiny` is the CI smoke mode:
//! the 50K-item trace, one repeat, same schema.
//!
//! The harness detects `nproc` up front; every point measured with
//! `nproc < shards + 1` (router plus one worker per shard can't each own
//! a core) is tagged `"oversubscribed": true` in the JSON so 1-core
//! numbers are never mistaken for scaling data. When cores allow, worker
//! placement is left to the OS scheduler — each worker is its own OS
//! thread, and with `nproc >= shards + 1` they spread onto distinct
//! cores; the toolchain has no affinity syscall to pin harder.
//!
//! Like the `detect` bin, an end-of-run telemetry snapshot lands at
//! `<prefix>.metrics.{json,prom}` (default prefix
//! `results/bench-pipeline`, override with `--metrics-out`, suppress
//! with `--no-metrics`). The counters are only live under
//! `--features telemetry`; without it the sidecars record zeros.

use qf_bench::pipeline::{
    detect_nproc, measure_pipeline, render_json, PipelineBenchReport, WorkloadMeta,
};
use qf_datasets::{zipf_dataset, ZipfConfig};
use qf_pipeline::{BackpressurePolicy, PipelineConfig};
use quantile_filter::Criteria;

const SHARD_POINTS: [usize; 4] = [1, 2, 4, 8];
const POLICIES: [BackpressurePolicy; 4] = [
    BackpressurePolicy::Block,
    BackpressurePolicy::DropNewest,
    BackpressurePolicy::DropOldest,
    BackpressurePolicy::ShedFair,
];
const SHARD_MEMORY: usize = 32 * 1024;

fn usage() -> ! {
    eprintln!(
        "usage: pipeline [--tiny] [--out PATH] [--repeats N] [--items N] [--queue N] \
         [--slab N] [--metrics-out PREFIX] [--no-metrics]"
    );
    std::process::exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut out = "BENCH_pipeline.json".to_string();
    let mut repeats: Option<usize> = None;
    let mut items: Option<usize> = None;
    let mut queue_capacity = 1024usize;
    let mut slab_capacity = 256usize;
    let mut metrics_out: Option<String> = None;
    let mut no_metrics = false;

    let mut i = 0;
    while i < argv.len() {
        let val = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--tiny" => tiny = true,
            "--out" => {
                out = val(i);
                i += 1;
            }
            "--repeats" => {
                repeats = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--items" => {
                items = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--queue" => {
                queue_capacity = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--slab" => {
                slab_capacity = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(val(i));
                i += 1;
            }
            "--no-metrics" => no_metrics = true,
            _ => usage(),
        }
        i += 1;
    }

    let repeats = repeats.unwrap_or(if tiny { 1 } else { 3 });
    let nproc = detect_nproc();

    let mut cfg = if tiny {
        ZipfConfig::tiny()
    } else {
        ZipfConfig::default()
    };
    if let Some(n) = items {
        cfg.items = n;
    }
    let data = zipf_dataset(&cfg);
    let criteria = match Criteria::new(30.0, 0.95, data.threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad criteria: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "pipeline: mode={} repeats={repeats} nproc={nproc} queue={queue_capacity} \
         slab={slab_capacity} trace zipf {} items / {} keys",
        if tiny { "tiny" } else { "full" },
        data.items.len(),
        data.key_count
    );

    let mut points = Vec::new();
    for policy in POLICIES {
        for shards in SHARD_POINTS {
            let config = PipelineConfig {
                shards,
                criteria,
                memory_bytes_per_shard: SHARD_MEMORY,
                queue_capacity,
                slab_capacity,
                policy,
                seed: 0,
            };
            let m = match measure_pipeline(config, &data.items, repeats) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("pipeline run (shards={shards}, {policy:?}): {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "{:<12} x{shards}: offered {:.2} Mops | sustained {:.2} Mops | \
                 drop rate {:.4} | {} reported keys{}",
                m.policy,
                m.offered_mops(),
                m.sustained_mops(),
                m.drop_rate(),
                m.reported_keys,
                if m.oversubscribed {
                    " | OVERSUBSCRIBED"
                } else {
                    ""
                }
            );
            points.push(m);
        }
    }

    let report = PipelineBenchReport {
        mode: if tiny { "tiny" } else { "full" }.to_string(),
        nproc,
        repeats,
        queue_capacity,
        slab_capacity,
        memory_bytes_per_shard: SHARD_MEMORY,
        workload: WorkloadMeta {
            name: "zipf".into(),
            items: data.items.len(),
            keys: data.key_count,
            threshold: data.threshold,
        },
        points,
    };
    let json = render_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    if !no_metrics {
        match qf_bench::metrics::flush_global_sidecars(metrics_out, "results/bench-pipeline") {
            Ok((json_path, prom_path)) => {
                println!("wrote {} and {}", json_path.display(), prom_path.display());
            }
            Err(e) => {
                eprintln!("failed to write telemetry sidecars: {e}");
                std::process::exit(1);
            }
        }
    }
}
