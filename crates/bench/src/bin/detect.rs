//! Run outstanding-key detection over a saved trace.
//!
//! ```text
//! cargo run -p qf-bench --release --bin detect -- \
//!     --trace PATH [--scheme qf|squad|polymer|hist|naive|exact] \
//!     [--memory BYTES] [--query SQL] [--eps E --delta D --threshold T] \
//!     [--ground-truth] [--seed S] [--metrics-out PREFIX] [--no-metrics]
//! ```
//!
//! The criteria come either from the paper's SQL form (`--query "SELECT
//! key FROM s GROUP BY key HAVING QUANTILE(value_set, 0.95) >= 300 WITH
//! eps = 30"`) or from the individual flags. With `--ground-truth` the
//! exact outstanding set is computed too and precision/recall/F1 printed.
//!
//! Every run emits telemetry sidecars `<prefix>.metrics.json` and
//! `<prefix>.metrics.prom` (default prefix `results/detect-<scheme>`;
//! override with `--metrics-out`, suppress with `--no-metrics`). The
//! hot-path counters inside are non-zero only when built with
//! `--features telemetry`; sampled insert-latency quantiles are always
//! recorded.

use qf_baselines::{
    ExactDetector, HistSketchDetector, NaiveDetector, OutstandingDetector, QfDetector,
    SketchPolymerDetector, SquadDetector,
};
use qf_datasets::trace;
use qf_eval::{ground_truth, run_detector_telemetered, Accuracy, TelemetryConfig};
use quantile_filter::{parse_query, Criteria};

fn usage() -> ! {
    eprintln!(
        "usage: detect --trace PATH [--scheme qf|squad|polymer|hist|naive|exact]\n\
         \x20              [--memory BYTES] [--query SQL]\n\
         \x20              [--eps E] [--delta D] [--threshold T]\n\
         \x20              [--ground-truth] [--seed S]\n\
         \x20              [--metrics-out PREFIX] [--no-metrics]"
    );
    std::process::exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path = None;
    let mut scheme = "qf".to_string();
    let mut memory = 1 << 20;
    let mut query: Option<String> = None;
    let mut eps = 30.0;
    let mut delta = 0.95;
    let mut threshold: Option<f64> = None;
    let mut want_truth = false;
    let mut seed = 1u64;
    let mut metrics_out: Option<String> = None;
    let mut no_metrics = false;

    let mut i = 0;
    while i < argv.len() {
        let val = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--trace" => {
                trace_path = Some(val(i));
                i += 1;
            }
            "--scheme" => {
                scheme = val(i);
                i += 1;
            }
            "--memory" => {
                memory = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--query" => {
                query = Some(val(i));
                i += 1;
            }
            "--eps" => {
                eps = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--delta" => {
                delta = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--threshold" => {
                threshold = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--ground-truth" => want_truth = true,
            "--seed" => {
                seed = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(val(i));
                i += 1;
            }
            "--no-metrics" => no_metrics = true,
            _ => usage(),
        }
        i += 1;
    }
    let Some(path) = trace_path else { usage() };

    let (items, trace_threshold) = trace::read_file(&path).unwrap_or_else(|e| {
        eprintln!("failed to read trace {path}: {e}");
        std::process::exit(1);
    });
    let criteria = match query {
        Some(q) => parse_query(&q).unwrap_or_else(|e| {
            eprintln!("bad --query: {e}");
            std::process::exit(1);
        }),
        None => {
            Criteria::new(eps, delta, threshold.unwrap_or(trace_threshold)).unwrap_or_else(|e| {
                eprintln!("bad criteria: {e}");
                std::process::exit(1);
            })
        }
    };
    println!(
        "trace: {} items; criteria: eps={} delta={} T={}; scheme={scheme} memory={memory}B",
        items.len(),
        criteria.epsilon(),
        criteria.delta(),
        criteria.threshold()
    );

    let mut detector: Box<dyn OutstandingDetector> = match scheme.as_str() {
        "qf" => Box::new(QfDetector::paper_default(criteria, memory, seed)),
        "squad" => Box::new(SquadDetector::new(criteria, memory, seed)),
        "polymer" => Box::new(SketchPolymerDetector::new(criteria, memory, seed)),
        "hist" => Box::new(HistSketchDetector::new(criteria, memory, seed)),
        "naive" => Box::new(NaiveDetector::new(criteria, memory, seed)),
        "exact" => Box::new(ExactDetector::new(criteria)),
        _ => usage(),
    };

    let telemetry = if no_metrics {
        TelemetryConfig {
            sidecar_prefix: None,
            ..TelemetryConfig::default()
        }
    } else {
        let prefix = metrics_out.unwrap_or_else(|| format!("results/detect-{scheme}"));
        TelemetryConfig::with_sidecar(prefix)
    };
    let run = run_detector_telemetered(detector.as_mut(), &items, &telemetry).unwrap_or_else(|e| {
        eprintln!("failed to write telemetry sidecar: {e}");
        std::process::exit(1);
    });
    let result = run.result;
    println!(
        "reported {} distinct keys ({} report events) in {:.3}s — {:.2} Mops, {} live bytes",
        result.reported.len(),
        result.report_events,
        result.seconds,
        result.mops(),
        result.memory_bytes
    );
    if let Some(h) = run.metrics.histogram("qf_insert_latency_ns") {
        println!(
            "insert latency (sampled, ns): p50={} p95={} p99={} max={}",
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max
        );
    }
    if let Some((json, prom)) = &run.sidecars {
        println!("telemetry: {} / {}", json.display(), prom.display());
    }

    if want_truth {
        let truth = ground_truth(&items, &criteria);
        let acc = Accuracy::of(&result.reported, &truth);
        println!("ground truth: {} outstanding keys; {acc}", truth.len());
    }
}
