//! Self-healing pipeline harness: supervision overhead when healthy,
//! restart latency when not.
//!
//! ```text
//! cargo run -p qf-bench --release --bin chaos -- \
//!     [--tiny] [--out PATH] [--repeats N] [--items N] [--queue N] [--slab N] \
//!     [--crashes N] [--metrics-out PREFIX] [--no-metrics]
//! ```
//!
//! For each shard count in {1, 2, 4, 8}, streams a Zipf trace through an
//! unsupervised pipeline and a supervised one (checkpoint + journal on,
//! zero faults) and records the throughput delta — the cost of the
//! self-healing machinery, budgeted at 10%. Then runs one supervised
//! pipeline under repeated injected worker crashes and distills the
//! restart-latency distribution (p50/p99/max), replay volume, and the
//! accounted loss from the supervisor's own recovery records.
//!
//! Writes `BENCH_chaos.json` (schema documented on
//! `qf_bench::chaos::render_json`). `--tiny` is the CI smoke mode.
//!
//! Shard points where the host has fewer cores than `shards + 1` threads
//! are tagged `"oversubscribed": true` in the JSON (and `OVERSUBSCRIBED`
//! on the console): the overhead fraction stays meaningful — baseline and
//! supervised runs time-slice identically — but the absolute Mops are
//! scheduler throughput, not parallel scaling. This bin never pins
//! threads; placement is the OS scheduler's.
//!
//! Like the `detect` bin, an end-of-run telemetry snapshot lands at
//! `<prefix>.metrics.{json,prom}` (default prefix `results/bench-chaos`,
//! override with `--metrics-out`, suppress with `--no-metrics`); the
//! supervision counters (restarts, replays, checkpoint seals) are only
//! live under `--features telemetry`.

use qf_bench::chaos::{measure_overhead, measure_recovery, render_json, ChaosBenchReport};
use qf_bench::pipeline::detect_nproc;
use qf_datasets::{zipf_dataset, ZipfConfig};
use qf_pipeline::{BackpressurePolicy, PipelineConfig, SupervisorConfig};
use quantile_filter::Criteria;
use std::time::Duration;

const SHARD_POINTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_MEMORY: usize = 32 * 1024;
const RECOVERY_SHARDS: usize = 4;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--tiny] [--out PATH] [--repeats N] [--items N] [--queue N] [--slab N] \
         [--crashes N] [--metrics-out PREFIX] [--no-metrics]"
    );
    std::process::exit(2)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut tiny = false;
    let mut out = "BENCH_chaos.json".to_string();
    let mut repeats: Option<usize> = None;
    let mut items: Option<usize> = None;
    let mut queue_capacity = 1024usize;
    let mut slab_capacity = 256usize;
    let mut crashes: Option<u32> = None;
    let mut metrics_out: Option<String> = None;
    let mut no_metrics = false;

    let mut i = 0;
    while i < argv.len() {
        let val = |i: usize| argv.get(i + 1).cloned().unwrap_or_else(|| usage());
        match argv[i].as_str() {
            "--tiny" => tiny = true,
            "--out" => {
                out = val(i);
                i += 1;
            }
            "--repeats" => {
                repeats = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--items" => {
                items = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--queue" => {
                queue_capacity = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--slab" => {
                slab_capacity = val(i).parse().unwrap_or_else(|_| usage());
                i += 1;
            }
            "--crashes" => {
                crashes = Some(val(i).parse().unwrap_or_else(|_| usage()));
                i += 1;
            }
            "--metrics-out" => {
                metrics_out = Some(val(i));
                i += 1;
            }
            "--no-metrics" => no_metrics = true,
            _ => usage(),
        }
        i += 1;
    }

    let repeats = repeats.unwrap_or(if tiny { 1 } else { 3 });
    let crashes = crashes.unwrap_or(if tiny { 4 } else { 16 });
    let nproc = detect_nproc();

    let mut cfg = if tiny {
        ZipfConfig::tiny()
    } else {
        ZipfConfig::default()
    };
    if let Some(n) = items {
        cfg.items = n;
    }
    let data = zipf_dataset(&cfg);
    let criteria = match Criteria::new(30.0, 0.95, data.threshold) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad criteria: {e}");
            std::process::exit(1);
        }
    };
    let sup = SupervisorConfig {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(8),
        ..SupervisorConfig::default()
    };

    println!(
        "chaos: mode={} repeats={repeats} nproc={nproc} queue={queue_capacity} \
         slab={slab_capacity} crashes={crashes} trace zipf {} items / {} keys",
        if tiny { "tiny" } else { "full" },
        data.items.len(),
        data.key_count
    );

    let pipe_config = |shards: usize| PipelineConfig {
        shards,
        criteria,
        memory_bytes_per_shard: SHARD_MEMORY,
        queue_capacity,
        slab_capacity,
        policy: BackpressurePolicy::Block,
        seed: 0,
    };

    let mut overhead = Vec::new();
    for shards in SHARD_POINTS {
        let p = match measure_overhead(pipe_config(shards), sup, &data.items, repeats) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("overhead run (shards={shards}): {e}");
                std::process::exit(1);
            }
        };
        println!(
            "overhead x{shards}: baseline {:.2} Mops | supervised {:.2} Mops | \
             overhead {:.1}%{}",
            p.baseline_mops,
            p.supervised_mops,
            p.overhead_frac() * 100.0,
            if p.oversubscribed {
                " | OVERSUBSCRIBED"
            } else {
                ""
            }
        );
        overhead.push(p);
    }

    println!("injecting {crashes} worker crashes (panic backtraces below are expected)...");
    let recovery = match measure_recovery(pipe_config(RECOVERY_SHARDS), sup, &data.items, crashes) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("recovery run: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "recovery x{RECOVERY_SHARDS}: {} restarts | p50 {} us | p99 {} us | max {} us | \
         replayed {} | lost {}",
        recovery.samples,
        recovery.p50_us,
        recovery.p99_us,
        recovery.max_us,
        recovery.replayed_total,
        recovery.lost_total
    );

    let report = ChaosBenchReport {
        mode: if tiny { "tiny" } else { "full" }.to_string(),
        nproc,
        repeats,
        queue_capacity,
        slab_capacity,
        checkpoint_interval: sup.checkpoint_interval,
        items: data.items.len(),
        overhead,
        recovery,
    };
    let json = render_json(&report);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");

    if !no_metrics {
        match qf_bench::metrics::flush_global_sidecars(metrics_out, "results/bench-chaos") {
            Ok((json_path, prom_path)) => {
                println!("wrote {} and {}", json_path.display(), prom_path.display());
            }
            Err(e) => {
                eprintln!("failed to write telemetry sidecars: {e}");
                std::process::exit(1);
            }
        }
    }
}
