//! Regenerate the paper's figures.
//!
//! ```text
//! cargo run -p qf-bench --release --bin figures -- [--scale tiny|small|full] [--out DIR] <figure>...
//! cargo run -p qf-bench --release --bin figures -- all
//! ```
//!
//! Figures: fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14
//! fig15 spot1mb. Each prints a tab-separated table and, with `--out`,
//! writes `<id>.csv`.

use qf_eval::figures::{self, FigureOutput, Scale};
use std::io::Write;

const ALL: &[&str] = &[
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "spot1mb",
];

fn run_figure(id: &str, scale: Scale) -> Option<FigureOutput> {
    Some(match id {
        "fig4" => figures::fig4(scale),
        "fig5" => figures::fig5(scale),
        "fig6" => figures::fig6(scale),
        "fig7" => figures::fig7(scale),
        "fig8" => figures::fig8(scale),
        "fig9" => figures::fig9(scale),
        "fig10" => figures::fig10(scale),
        "fig11" => figures::fig11(scale),
        "fig12" => figures::fig12(scale),
        "fig13" => figures::fig13(scale),
        "fig14" => figures::fig14(scale),
        "fig15" => figures::fig15(scale),
        "spot1mb" => figures::spot1mb(scale),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut out_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    other => {
                        eprintln!("unknown scale {other:?}; use tiny|small|full");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                out_dir = Some(args.get(i).expect("--out needs a directory").clone());
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }

    if wanted.is_empty() {
        eprintln!("usage: figures [--scale tiny|small|full] [--out DIR] <figure>...|all");
        eprintln!("figures: {}", ALL.join(" "));
        std::process::exit(2);
    }

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }

    for id in wanted {
        let start = std::time::Instant::now();
        let Some(fig) = run_figure(&id, scale) else {
            eprintln!("unknown figure {id}; known: {}", ALL.join(" "));
            std::process::exit(2);
        };
        println!("{fig}");
        println!("[{} done in {:.1}s]\n", id, start.elapsed().as_secs_f64());
        if let Some(dir) = &out_dir {
            let path = format!("{dir}/{id}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv");
            f.write_all(fig.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}
