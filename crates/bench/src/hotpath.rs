//! The hot-path A/B harness behind the `hotpath` bin.
//!
//! [`LegacyFilter`] reconstructs the pre-refactor insert flow from the
//! filter's public parts — identical structures, seeds, and Qweight math,
//! but the old three-query vague-part conversation (`add`, then a
//! rehashing `estimate`, then a re-deriving `remove_estimate`) and a
//! fresh `report_threshold()` division at every check. Running it against
//! [`QuantileFilter::insert`] / [`QuantileFilter::insert_batch`] on the
//! same trace isolates exactly what the one-pass rewrite bought; the unit
//! tests below pin the two to identical report decisions, so the
//! comparison measures the insert flow and nothing else.
//!
//! The harness reports best-of-`repeats` wall-clock throughput in Mops/s
//! (million inserts per second) and renders the whole run as the
//! `BENCH_hotpath.json` schema documented on [`render_json`].

use qf_baselines::QfDetector;
use qf_datasets::Item;
use qf_eval::ShardedDetector;
use qf_hash::SplitMix64;
use qf_sketch::{CountSketch, StochasticRounder, WeightSketch};
use quantile_filter::candidate::{CandidateOutcome, CandidatePart};
use quantile_filter::vague::VagueKey;
use quantile_filter::{Criteria, ElectionStrategy, QuantileFilter, QuantileFilterBuilder};
use std::hint::black_box;
use std::time::Instant;

/// Structure dimensions shared by the legacy baseline and the current
/// filter, so an A/B run compares code paths over bit-identical state.
#[derive(Debug, Clone, Copy)]
pub struct HotpathDims {
    /// Candidate buckets `m`.
    pub candidate_buckets: usize,
    /// Entries per bucket `b`.
    pub bucket_len: usize,
    /// Vague-part rows `d`.
    pub vague_depth: usize,
    /// Vague-part counters per row `w`.
    pub vague_width: usize,
    /// Master seed (hash families, rounder, and election RNG derive from
    /// it exactly as [`QuantileFilterBuilder`] does).
    pub seed: u64,
}

impl HotpathDims {
    /// ≈32 KiB at the paper's 4:1 candidate:vague split with b = 6, d = 3:
    /// 728 × 6 candidate entries (6 B each) plus 3 × 2184 i8 counters.
    /// Small enough to stay cache-resident, so the A/B difference is
    /// hashing and arithmetic rather than DRAM.
    pub fn paper_32k(seed: u64) -> Self {
        Self {
            candidate_buckets: 728,
            bucket_len: 6,
            vague_depth: 3,
            vague_width: 2184,
            seed,
        }
    }
}

/// Build the current filter with exactly the dimensions and derived seeds
/// the legacy baseline uses.
pub fn build_current(criteria: Criteria, dims: &HotpathDims) -> QuantileFilter {
    QuantileFilterBuilder::new(criteria)
        .candidate_buckets(dims.candidate_buckets)
        .bucket_len(dims.bucket_len)
        .vague_dims(dims.vague_depth, dims.vague_width)
        .seed(dims.seed)
        .build()
}

/// The pre-refactor QuantileFilter insert flow, rebuilt from public parts.
///
/// Decision-for-decision equivalent to [`QuantileFilter::insert`] when
/// constructed with the same [`HotpathDims`] (same hash seeds, same
/// rounder and election RNG streams), but performing the work the
/// one-pass rewrite eliminated: per-check `ε/(1−δ)` divisions, a full
/// row-rehashing `estimate` after every vague `add`, and a third
/// estimate-re-deriving sketch query on reports and elections.
pub struct LegacyFilter {
    criteria: Criteria,
    candidate: CandidatePart,
    vague: CountSketch<i8>,
    strategy: ElectionStrategy,
    rounder: StochasticRounder,
    rng: SplitMix64,
}

impl LegacyFilter {
    /// Build with the same derived seeds as [`build_current`].
    pub fn new(criteria: Criteria, dims: &HotpathDims) -> Self {
        Self {
            criteria,
            candidate: CandidatePart::new(dims.candidate_buckets, dims.bucket_len, dims.seed),
            vague: CountSketch::new(dims.vague_depth, dims.vague_width, dims.seed ^ 0x7A63_5E11),
            strategy: ElectionStrategy::default(),
            rounder: StochasticRounder::new(dims.seed ^ 0x5EED_0001),
            rng: SplitMix64::new(dims.seed ^ 0x5EED_0002),
        }
    }

    #[inline]
    fn meets(&self, qw: i64) -> bool {
        // Pre-refactor check: the ε/(1−δ) division re-runs at every call.
        qw as f64 + 1e-9 >= self.criteria.report_threshold()
    }

    /// The old insert: candidate offer, then on overflow up to three
    /// separate sketch queries. Returns whether the key was reported.
    #[inline]
    pub fn insert(&mut self, key: u64, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        let delta = self.rounder.round(self.criteria.item_weight(value));
        let bucket = self.candidate.bucket_of(&key);
        let fp = self.candidate.fingerprint_of(&key);
        match self.candidate.offer(bucket, fp, delta) {
            CandidateOutcome::Updated { qweight } => {
                if self.meets(qweight) {
                    self.candidate.reset_entry(bucket, fp);
                    return true;
                }
                false
            }
            CandidateOutcome::Inserted => {
                if self.meets(delta) {
                    self.candidate.reset_entry(bucket, fp);
                    return true;
                }
                false
            }
            CandidateOutcome::BucketFull => {
                let vk = VagueKey::new(bucket, fp);
                // Query 1: add (d row hashes). Query 2: estimate (the
                // same d row hashes all over again).
                self.vague.add(&vk, delta);
                let est = self.vague.estimate(&vk);
                if self.meets(est) {
                    // Query 3: remove_estimate re-derives the estimate a
                    // third time before subtracting it.
                    self.vague.remove_estimate(&vk);
                    return true;
                }
                if let Some((min_fp, min_qw)) = self.candidate.min_entry(bucket) {
                    if self.strategy.should_replace(est, min_qw, &mut self.rng) {
                        let pulled = self.vague.remove_estimate(&vk);
                        self.vague.add(&VagueKey::new(bucket, min_fp), min_qw);
                        self.candidate.replace(bucket, min_fp, fp, pulled);
                    }
                }
                false
            }
        }
    }
}

/// One timed ingest run: item count, best wall-clock seconds, reports.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Items ingested per run.
    pub items: usize,
    /// Best-of-repeats wall-clock seconds.
    pub seconds: f64,
    /// Reports (or reported keys, for sharded runs) from the last repeat.
    pub reports: u64,
}

impl Measurement {
    /// Million inserts per second.
    pub fn mops(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.items as f64 / self.seconds / 1e6
    }
}

/// Best-of-`repeats` timing: `setup` runs untimed before each repeat (so
/// construction and allocation stay out of the measurement), `run` is the
/// timed ingest and returns its report count.
fn timed<T>(
    items_len: usize,
    repeats: usize,
    mut setup: impl FnMut() -> T,
    mut run: impl FnMut(&mut T) -> u64,
) -> Measurement {
    let mut best = f64::INFINITY;
    let mut reports = 0;
    for _ in 0..repeats.max(1) {
        let mut state = setup();
        let t0 = Instant::now();
        let r = run(&mut state);
        let dt = t0.elapsed().as_secs_f64();
        black_box(&state);
        reports = r;
        if dt < best {
            best = dt;
        }
    }
    Measurement {
        items: items_len,
        seconds: best,
        reports,
    }
}

/// Time the legacy three-query insert flow over `items`.
pub fn measure_legacy(
    criteria: Criteria,
    dims: &HotpathDims,
    items: &[(u64, f64)],
    repeats: usize,
) -> Measurement {
    timed(
        items.len(),
        repeats,
        || LegacyFilter::new(criteria, dims),
        |f| {
            let mut r = 0u64;
            for &(k, v) in items {
                r += u64::from(f.insert(k, v));
            }
            r
        },
    )
}

/// Time the current one-pass scalar insert over `items`.
pub fn measure_scalar(
    criteria: Criteria,
    dims: &HotpathDims,
    items: &[(u64, f64)],
    repeats: usize,
) -> Measurement {
    timed(
        items.len(),
        repeats,
        || build_current(criteria, dims),
        |f| {
            let mut r = 0u64;
            for &(k, v) in items {
                r += u64::from(f.insert(&k, v).is_some());
            }
            r
        },
    )
}

/// Time [`QuantileFilter::insert_batch`] over `items` in `chunk`-sized
/// feeds (the chunk only bounds how far the prefetcher looks ahead; the
/// replayed stream is identical).
pub fn measure_batch(
    criteria: Criteria,
    dims: &HotpathDims,
    items: &[(u64, f64)],
    chunk: usize,
    repeats: usize,
) -> Measurement {
    timed(
        items.len(),
        repeats,
        || build_current(criteria, dims),
        |f| {
            let mut r = 0u64;
            for part in items.chunks(chunk.max(1)) {
                f.insert_batch(part, &mut |_, _| r += 1);
            }
            r
        },
    )
}

/// A sharded timing plus the worker count the bank actually ran with.
///
/// `ShardedDetector` clamps the request to the shard count; a scaling
/// curve that labels points by the *requested* count silently flattens
/// past the clamp, so the measurement carries the effective value out.
#[derive(Debug, Clone, Copy)]
pub struct ShardedMeasurement {
    /// The timed run (`reports` counts distinct reported keys).
    pub measurement: Measurement,
    /// Worker threads actually spawned (requested clamped to shards).
    pub effective_threads: usize,
}

/// Time [`ShardedDetector::run_parallel`] at a given worker count over a
/// bank of `shards` paper-default QuantileFilters.
pub fn measure_sharded(
    criteria: Criteria,
    memory_bytes: usize,
    shards: usize,
    threads: usize,
    items: &[Item],
    repeats: usize,
) -> ShardedMeasurement {
    let mut effective = 0usize;
    let measurement = timed(
        items.len(),
        repeats,
        || {
            ShardedDetector::new(
                (0..shards)
                    .map(|i| QfDetector::paper_default(criteria, memory_bytes, i as u64))
                    .collect::<Vec<_>>(),
            )
        },
        |bank| {
            let run = bank.run_parallel_counted(items, threads);
            effective = run.effective_threads;
            run.reported.len() as u64
        },
    );
    ShardedMeasurement {
        measurement,
        effective_threads: effective,
    }
}

/// Single-thread A/B block of one workload.
#[derive(Debug, Clone, Copy)]
pub struct SingleThread {
    /// The reconstructed pre-refactor flow.
    pub legacy: Measurement,
    /// Current scalar [`QuantileFilter::insert`].
    pub scalar: Measurement,
    /// Current [`QuantileFilter::insert_batch`].
    pub batch: Measurement,
}

/// One `run_parallel` scaling point.
#[derive(Debug, Clone, Copy)]
pub struct ThreadPoint {
    /// Worker count requested.
    pub threads: usize,
    /// Worker count the bank actually used (requested clamped to shards).
    pub effective_threads: usize,
    /// `true` when the measuring host had fewer cores than
    /// `effective_threads`: the point measures time-sharing, not scaling,
    /// and must not be read as scaling data (same verdict the pipeline
    /// bench attaches to its points).
    pub oversubscribed: bool,
    /// The timed run (`reports` counts distinct reported keys).
    pub measurement: Measurement,
}

/// All measurements taken on one trace.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name ("zipf", "internet").
    pub name: String,
    /// Stream length.
    pub items: usize,
    /// Distinct keys present.
    pub keys: u64,
    /// Value threshold `T` used by the criteria.
    pub threshold: f64,
    /// Single-thread A/B numbers.
    pub single: SingleThread,
    /// Sharded-ingest scaling points.
    pub sharded: Vec<ThreadPoint>,
}

/// A full harness run, renderable as `BENCH_hotpath.json`.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// "full" or "tiny" (the CI smoke mode).
    pub mode: String,
    /// `available_parallelism` of the measuring host.
    pub nproc: usize,
    /// Best-of repeats per measurement.
    pub repeats: usize,
    /// Batch feed size used by the `insert_batch` measurement.
    pub batch_chunk: usize,
    /// Per-workload results.
    pub workloads: Vec<WorkloadResult>,
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "0".into()
    }
}

/// Render the report as the `BENCH_hotpath.json` document:
///
/// ```json
/// {
///   "schema": "qf-bench-hotpath/v3",
///   "mode": "full",            // or "tiny" (CI smoke)
///   "nproc": 1,                // cores on the measuring host
///   "repeats": 3,              // best-of repeats per number
///   "batch_chunk": 4096,
///   "workloads": [{
///     "name": "zipf", "items": 2000000, "keys": 120000, "threshold": 300.0,
///     "single_thread": {
///       "legacy_mops": 10.0,   // pre-refactor three-query flow
///       "scalar_mops": 14.0,   // current insert()
///       "batch_mops": 16.0,    // current insert_batch()
///       "scalar_speedup_vs_legacy": 1.4,
///       "batch_speedup_vs_legacy": 1.6,
///       "batch_speedup_vs_scalar": 1.14,
///       "reports": 1234        // identical across all three by construction
///     },
///     "sharded": [
///       {"threads": 1, "effective_threads": 1, "oversubscribed": false,
///        "mops": 9.0, "reported_keys": 77},
///       ...
///     ]
///   }]
/// }
/// ```
///
/// v2 added `effective_threads` per sharded point: the bank clamps the
/// requested worker count to its shard count, and with the clamp visible
/// a flat tail in the scaling curve is distinguishable from a host that
/// simply has fewer cores than shards (`nproc`).
///
/// v3 adds two honesty fields. `oversubscribed` per sharded point marks
/// measurements where the host had fewer cores than the effective worker
/// count — those points measure time-sharing, not scaling, and consumers
/// must not fit scaling curves through them (the pipeline bench attaches
/// the same verdict to its points). `batch_speedup_vs_scalar` in the
/// single-thread block states the batched path's gain over the *current*
/// scalar insert directly, so the batch win is no longer only readable as
/// a ratio of two legacy-relative speedups.
pub fn render_json(report: &HotpathReport) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"qf-bench-hotpath/v3\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", report.mode));
    out.push_str(&format!("  \"nproc\": {},\n", report.nproc));
    out.push_str(&format!("  \"repeats\": {},\n", report.repeats));
    out.push_str(&format!("  \"batch_chunk\": {},\n", report.batch_chunk));
    out.push_str("  \"workloads\": [\n");
    for (i, w) in report.workloads.iter().enumerate() {
        let s = &w.single;
        let (legacy, scalar, batch) = (s.legacy.mops(), s.scalar.mops(), s.batch.mops());
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", w.name));
        out.push_str(&format!("      \"items\": {},\n", w.items));
        out.push_str(&format!("      \"keys\": {},\n", w.keys));
        out.push_str(&format!("      \"threshold\": {},\n", num(w.threshold)));
        out.push_str("      \"single_thread\": {\n");
        out.push_str(&format!("        \"legacy_mops\": {},\n", num(legacy)));
        out.push_str(&format!("        \"scalar_mops\": {},\n", num(scalar)));
        out.push_str(&format!("        \"batch_mops\": {},\n", num(batch)));
        out.push_str(&format!(
            "        \"scalar_speedup_vs_legacy\": {},\n",
            num(if legacy > 0.0 { scalar / legacy } else { 0.0 })
        ));
        out.push_str(&format!(
            "        \"batch_speedup_vs_legacy\": {},\n",
            num(if legacy > 0.0 { batch / legacy } else { 0.0 })
        ));
        out.push_str(&format!(
            "        \"batch_speedup_vs_scalar\": {},\n",
            num(if scalar > 0.0 { batch / scalar } else { 0.0 })
        ));
        out.push_str(&format!("        \"reports\": {}\n", s.batch.reports));
        out.push_str("      },\n");
        out.push_str("      \"sharded\": [\n");
        for (j, p) in w.sharded.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"threads\": {}, \"effective_threads\": {}, \"oversubscribed\": {}, \"mops\": {}, \"reported_keys\": {}}}{}\n",
                p.threads,
                p.effective_threads,
                p.oversubscribed,
                num(p.measurement.mops()),
                p.measurement.reports,
                if j + 1 < w.sharded.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.workloads.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn criteria() -> Criteria {
        match Criteria::new(5.0, 0.9, 100.0) {
            Ok(c) => c,
            Err(e) => panic!("criteria: {e}"),
        }
    }

    fn trace(len: usize, keys: u64, seed: u64) -> Vec<(u64, f64)> {
        let mut rng = SplitMix64::new(seed);
        (0..len)
            .map(|_| {
                let key = rng.next_u64() % keys;
                let value = if rng.next_u64() % 100 < 40 {
                    500.0
                } else {
                    5.0
                };
                (key, value)
            })
            .collect()
    }

    #[test]
    fn legacy_filter_matches_current_decisions_item_for_item() {
        // The baseline is only a fair baseline if it is the same filter:
        // same per-item report decisions over a collision-heavy trace.
        let dims = HotpathDims {
            candidate_buckets: 32,
            bucket_len: 2,
            vague_depth: 3,
            vague_width: 512,
            seed: 0xA11CE,
        };
        let c = criteria();
        let mut legacy = LegacyFilter::new(c, &dims);
        let mut current = build_current(c, &dims);
        let items = trace(40_000, 2_000, 7);
        let mut reports = 0u64;
        for (i, &(k, v)) in items.iter().enumerate() {
            let a = legacy.insert(k, v);
            let b = current.insert(&k, v).is_some();
            assert_eq!(a, b, "decision divergence at item {i} (key {k})");
            reports += u64::from(a);
        }
        assert!(reports > 10, "only {reports} reports — trace too tame");
        assert!(
            current.stats().vague_visits > 10_000,
            "vague path barely exercised"
        );
        assert!(current.stats().exchanges > 0, "no elections exercised");
    }

    #[test]
    fn all_three_measurements_agree_on_reports() {
        let dims = HotpathDims {
            candidate_buckets: 64,
            bucket_len: 4,
            vague_depth: 3,
            vague_width: 1024,
            seed: 0xBEE,
        };
        let c = criteria();
        let items = trace(20_000, 1_500, 11);
        let legacy = measure_legacy(c, &dims, &items, 1);
        let scalar = measure_scalar(c, &dims, &items, 1);
        let batch = measure_batch(c, &dims, &items, 4096, 1);
        assert!(legacy.reports > 0);
        assert_eq!(legacy.reports, scalar.reports);
        assert_eq!(scalar.reports, batch.reports);
        assert_eq!(legacy.items, 20_000);
    }

    #[test]
    fn rendered_json_is_balanced_and_complete() {
        let m = Measurement {
            items: 1000,
            seconds: 0.001,
            reports: 5,
        };
        let report = HotpathReport {
            mode: "tiny".into(),
            nproc: 1,
            repeats: 1,
            batch_chunk: 4096,
            workloads: vec![WorkloadResult {
                name: "zipf".into(),
                items: 1000,
                keys: 100,
                threshold: 300.0,
                single: SingleThread {
                    legacy: m,
                    scalar: m,
                    batch: m,
                },
                sharded: vec![
                    ThreadPoint {
                        threads: 1,
                        effective_threads: 1,
                        oversubscribed: false,
                        measurement: m,
                    },
                    ThreadPoint {
                        threads: 16,
                        effective_threads: 2,
                        oversubscribed: true,
                        measurement: m,
                    },
                ],
            }],
        };
        let json = render_json(&report);
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in:\n{json}");
        }
        for key in [
            "\"schema\"",
            "\"qf-bench-hotpath/v3\"",
            "\"legacy_mops\"",
            "\"scalar_mops\"",
            "\"batch_mops\"",
            "\"batch_speedup_vs_legacy\"",
            "\"batch_speedup_vs_scalar\"",
            "\"sharded\"",
            "\"threads\": 16, \"effective_threads\": 2, \"oversubscribed\": true",
            "\"threads\": 1, \"effective_threads\": 1, \"oversubscribed\": false",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // No trailing commas (the classic hand-rolled-JSON bug).
        assert!(!json.contains(",\n      ]"));
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",}"));
    }

    #[test]
    fn sharded_measurement_exposes_the_clamp() {
        let items: Vec<Item> = trace(2_000, 200, 3)
            .into_iter()
            .map(|(key, value)| Item { key, value })
            .collect();
        let m = measure_sharded(criteria(), 8 * 1024, 2, 16, &items, 1);
        assert_eq!(m.effective_threads, 2, "16 requested over 2 shards");
        let m = measure_sharded(criteria(), 8 * 1024, 4, 4, &items, 1);
        assert_eq!(m.effective_threads, 4, "unclamped request passes through");
    }

    #[test]
    fn measurement_mops_math() {
        let m = Measurement {
            items: 2_000_000,
            seconds: 0.5,
            reports: 0,
        };
        assert!((m.mops() - 4.0).abs() < 1e-9);
        let zero = Measurement {
            items: 10,
            seconds: 0.0,
            reports: 0,
        };
        assert_eq!(zero.mops(), 0.0);
    }
}
