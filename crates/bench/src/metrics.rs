//! End-of-run telemetry sidecars for the bench binaries.
//!
//! The `detect` bin routes its sidecars through `qf-eval`'s
//! `TelemetryConfig`; the `pipeline` and `chaos` bins drive the pipeline
//! directly, so they flush the global registry themselves at exit. This
//! module is that one shared flush, so both bins spell their
//! `--metrics-out PREFIX` / `--no-metrics` flags identically.
//!
//! The counters are only live when the stack is built with
//! `--features telemetry`; an uninstrumented build still writes the
//! sidecars, they just hold zeros — which is itself useful as a schema
//! smoke test in CI.

use std::path::PathBuf;

/// Write `<prefix>.metrics.{json,prom}` from the global registry and
/// return the two sidecar paths. `prefix` falls back to
/// `default_prefix` (e.g. `results/bench-pipeline`) when the user gave
/// no `--metrics-out`.
pub fn flush_global_sidecars(
    prefix: Option<String>,
    default_prefix: &str,
) -> std::io::Result<(PathBuf, PathBuf)> {
    let prefix = prefix.unwrap_or_else(|| default_prefix.to_string());
    let mut rep = qf_telemetry::PeriodicReporter::new(&prefix, std::time::Duration::ZERO);
    rep.flush(&qf_telemetry::global().snapshot())?;
    Ok((rep.json_path(), rep.prom_path()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_writes_under_default_prefix_and_returns_paths() {
        let dir = std::env::temp_dir().join(format!("qf_bench_metrics_{}", std::process::id()));
        let default = dir.join("bench-pipeline");
        let (json, prom) =
            flush_global_sidecars(None, default.to_str().unwrap()).expect("flush failed");
        assert_eq!(json, default.with_extension("metrics.json"));
        assert!(json.exists() && prom.exists());
        let body = std::fs::read_to_string(&json).unwrap();
        assert!(
            body.contains("qf_filter_inserts_total"),
            "schema missing: {body}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn explicit_prefix_overrides_default() {
        let dir = std::env::temp_dir().join(format!("qf_bench_metrics_ovr_{}", std::process::id()));
        let explicit = dir.join("custom");
        let (json, _) = flush_global_sidecars(
            Some(explicit.to_str().unwrap().to_string()),
            "results/should-not-be-used",
        )
        .expect("flush failed");
        assert_eq!(json, explicit.with_extension("metrics.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
