//! Per-item cost of every detector on a realistic mixed stream — the
//! microbenchmark behind the paper's §V-C speed claims (QuantileFilter's
//! integrated insert+detect vs the SOTA insert-then-query loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use qf_baselines::{
    HistSketchDetector, NaiveDetector, OutstandingDetector, QfDetector, SketchPolymerDetector,
    SquadDetector,
};
use qf_datasets::{internet_like, InternetConfig};
use quantile_filter::Criteria;

const MEMORY: usize = 256 * 1024;

fn workload() -> Vec<qf_datasets::Item> {
    let cfg = InternetConfig {
        items: 100_000,
        keys: 5_000,
        ..InternetConfig::default()
    };
    internet_like(&cfg).items
}

fn crit() -> Criteria {
    Criteria::new(30.0, 0.95, 300.0).unwrap()
}

fn bench_detectors(c: &mut Criterion) {
    let items = workload();
    let mut group = c.benchmark_group("detector_insert_detect");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);

    type DetectorFactory = Box<dyn Fn() -> Box<dyn OutstandingDetector>>;
    let mk: Vec<(&str, DetectorFactory)> = vec![
        (
            "QuantileFilter",
            Box::new(|| Box::new(QfDetector::paper_default(crit(), MEMORY, 1))),
        ),
        (
            "NaiveDualCS",
            Box::new(|| Box::new(NaiveDetector::new(crit(), MEMORY, 1))),
        ),
        (
            "SQUAD",
            Box::new(|| Box::new(SquadDetector::new(crit(), MEMORY, 1))),
        ),
        (
            "SketchPolymer",
            Box::new(|| Box::new(SketchPolymerDetector::new(crit(), MEMORY, 1))),
        ),
        (
            "HistSketch",
            Box::new(|| Box::new(HistSketchDetector::new(crit(), MEMORY, 1))),
        ),
    ];

    for (name, make) in mk {
        group.bench_function(name, |b| {
            b.iter_batched(
                &make,
                |mut det| {
                    let mut reports = 0u64;
                    for it in &items {
                        if det.insert(black_box(it.key), black_box(it.value)) {
                            reports += 1;
                        }
                    }
                    black_box(reports)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_qf_paths(c: &mut Criterion) {
    // Candidate-hit fast path vs vague-part slow path.
    let mut group = c.benchmark_group("qf_paths");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("candidate_hits_single_key", |b| {
        let mut det = QfDetector::paper_default(crit(), MEMORY, 2);
        b.iter(|| {
            for i in 0..100_000u64 {
                black_box(det.insert(black_box(7), black_box((i % 100) as f64)));
            }
        });
    });
    group.bench_function("vague_spill_many_keys", |b| {
        // Far more keys than candidate slots forces the vague path.
        let mut det = QfDetector::paper_default(crit(), 4 * 1024, 3);
        b.iter(|| {
            for i in 0..100_000u64 {
                black_box(det.insert(black_box(i % 50_000), black_box(5.0)));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_qf_paths);
criterion_main!(benches);
