//! Ablation benches for the design choices DESIGN.md §5 calls out:
//! stochastic integer rounding vs f64 counters (simulated), election
//! strategies, CS vs CMS vague parts, and candidate fraction — the hot
//! loops behind Figs. 10–12.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qf_baselines::{OutstandingDetector, QfDetector};
use qf_datasets::{internet_like, InternetConfig};
use quantile_filter::{Criteria, ElectionStrategy};

const MEMORY: usize = 128 * 1024;

fn workload() -> Vec<qf_datasets::Item> {
    let cfg = InternetConfig {
        items: 100_000,
        keys: 5_000,
        ..InternetConfig::default()
    };
    internet_like(&cfg).items
}

fn crit() -> Criteria {
    Criteria::new(30.0, 0.95, 300.0).unwrap()
}

fn run(det: &mut dyn OutstandingDetector, items: &[qf_datasets::Item]) -> u64 {
    let mut reports = 0;
    for it in items {
        if det.insert(black_box(it.key), black_box(it.value)) {
            reports += 1;
        }
    }
    reports
}

fn bench_election_strategies(c: &mut Criterion) {
    let items = workload();
    let mut group = c.benchmark_group("election_strategy");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for strategy in ElectionStrategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter_batched(
                    || QfDetector::with_params(crit(), MEMORY, 6, 3, 0.8, strategy, 1),
                    |mut det| black_box(run(&mut det, &items)),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_cs_vs_cms(c: &mut Criterion) {
    let items = workload();
    let mut group = c.benchmark_group("vague_sketch_type");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    group.bench_function("CS", |b| {
        b.iter_batched(
            || QfDetector::with_params(crit(), MEMORY, 6, 3, 0.8, ElectionStrategy::Comparative, 2),
            |mut det| black_box(run(&mut det, &items)),
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("CMS", |b| {
        b.iter_batched(
            || QfDetector::with_cms(crit(), MEMORY, 3, 0.8, ElectionStrategy::Comparative, 2),
            |mut det| black_box(run(&mut det, &items)),
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_fractional_vs_integral_delta(c: &mut Criterion) {
    // δ = 0.95 gives an integral weight (19, no RNG on the hot path);
    // δ = 0.85 gives 17/3 and exercises stochastic rounding per item.
    let items = workload();
    let mut group = c.benchmark_group("delta_weight_rounding");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for (label, delta) in [("integral_d0.95", 0.95), ("fractional_d0.85", 0.85)] {
        group.bench_function(label, |b| {
            let criteria = Criteria::new(30.0, delta, 300.0).unwrap();
            b.iter_batched(
                || QfDetector::paper_default(criteria, MEMORY, 3),
                |mut det| black_box(run(&mut det, &items)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_candidate_fraction(c: &mut Criterion) {
    let items = workload();
    let mut group = c.benchmark_group("candidate_fraction");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(10);
    for frac in [0.2, 0.5, 0.8] {
        group.bench_with_input(BenchmarkId::from_parameter(frac), &frac, |b, &frac| {
            b.iter_batched(
                || {
                    QfDetector::with_params(
                        crit(),
                        MEMORY,
                        6,
                        3,
                        frac,
                        ElectionStrategy::Comparative,
                        4,
                    )
                },
                |mut det| black_box(run(&mut det, &items)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_election_strategies,
    bench_cs_vs_cms,
    bench_fractional_vs_integral_delta,
    bench_candidate_fraction
);
criterion_main!(benches);
