//! Microbenchmarks for the single-key quantile summaries (GK, KLL,
//! t-digest, DDSketch): insert throughput and query latency. The query
//! costs here are the per-item "offline query" penalty the SOTA detectors
//! pay on every stream item.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use qf_quantiles::{DdSketch, GkSummary, KllSketch, QuantileSummary, TDigest};
use rand::prelude::*;

const N: usize = 50_000;

fn values() -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    (0..N).map(|_| rng.gen_range(0.0..1000.0)).collect()
}

fn bench_inserts(c: &mut Criterion) {
    let vals = values();
    let mut group = c.benchmark_group("summary_insert");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("gk_eps0.01", |b| {
        b.iter(|| {
            let mut s = GkSummary::new(0.01);
            for &v in &vals {
                s.insert(black_box(v));
            }
            black_box(s.count())
        });
    });
    group.bench_function("kll_k200", |b| {
        b.iter(|| {
            let mut s = KllSketch::new(200, 7);
            for &v in &vals {
                s.insert(black_box(v));
            }
            black_box(s.count())
        });
    });
    group.bench_function("tdigest_c100", |b| {
        b.iter(|| {
            let mut s = TDigest::new(100.0);
            for &v in &vals {
                s.insert(black_box(v));
            }
            black_box(s.count())
        });
    });
    group.bench_function("ddsketch_a0.01", |b| {
        b.iter(|| {
            let mut s = DdSketch::new(0.01, 2048);
            for &v in &vals {
                s.insert(black_box(v));
            }
            black_box(s.count())
        });
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let vals = values();
    let mut group = c.benchmark_group("summary_query_p95");
    // Pre-fill each summary once, then measure repeated queries — the
    // operation SOTA baselines run per stream item.
    let mut gk = GkSummary::new(0.01);
    let mut kll = KllSketch::new(200, 7);
    let mut td = TDigest::new(100.0);
    let mut dd = DdSketch::new(0.01, 2048);
    for &v in &vals {
        gk.insert(v);
        kll.insert(v);
        td.insert(v);
        dd.insert(v);
    }
    group.bench_function("gk", |b| {
        b.iter(|| black_box(gk.query(black_box(0.95))));
    });
    group.bench_function("kll", |b| {
        b.iter(|| black_box(kll.query(black_box(0.95))));
    });
    group.bench_function("tdigest", |b| {
        b.iter(|| black_box(td.query(black_box(0.95))));
    });
    group.bench_function("ddsketch", |b| {
        b.iter(|| black_box(dd.query(black_box(0.95))));
    });
    group.finish();
}

criterion_group!(benches, bench_inserts, bench_queries);
criterion_main!(benches);
