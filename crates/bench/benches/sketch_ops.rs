//! Microbenchmarks for the sketch substrate: CountSketch vs Count-Min
//! insert, estimate and delete across counter widths — the per-item cost
//! model behind the paper's constant-time claim.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qf_sketch::{CountMinSketch, CountSketch, StochasticRounder, WeightSketch};

const N_KEYS: u64 = 10_000;

fn bench_count_sketch_add(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch_add");
    group.throughput(Throughput::Elements(N_KEYS));
    for d in [1usize, 3, 8] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut cs = CountSketch::<i32>::new(d, 1 << 14, 1);
            b.iter(|| {
                for k in 0..N_KEYS {
                    cs.add(black_box(&k), black_box((k % 7) as i64 - 3));
                }
            });
        });
    }
    group.finish();
}

fn bench_count_sketch_estimate(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_sketch_estimate");
    group.throughput(Throughput::Elements(N_KEYS));
    for d in [1usize, 3, 8] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut cs = CountSketch::<i32>::new(d, 1 << 14, 2);
            for k in 0..N_KEYS {
                cs.add(&k, 5);
            }
            b.iter(|| {
                let mut acc = 0i64;
                for k in 0..N_KEYS {
                    acc = acc.wrapping_add(cs.estimate(black_box(&k)));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_counter_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_width_add");
    group.throughput(Throughput::Elements(N_KEYS));
    group.bench_function("i8", |b| {
        let mut cs = CountSketch::<i8>::new(3, 1 << 16, 3);
        b.iter(|| {
            for k in 0..N_KEYS {
                cs.add(black_box(&k), 1);
            }
        });
    });
    group.bench_function("i16", |b| {
        let mut cs = CountSketch::<i16>::new(3, 1 << 15, 3);
        b.iter(|| {
            for k in 0..N_KEYS {
                cs.add(black_box(&k), 1);
            }
        });
    });
    group.bench_function("i32", |b| {
        let mut cs = CountSketch::<i32>::new(3, 1 << 14, 3);
        b.iter(|| {
            for k in 0..N_KEYS {
                cs.add(black_box(&k), 1);
            }
        });
    });
    group.finish();
}

fn bench_cms_vs_cs(c: &mut Criterion) {
    let mut group = c.benchmark_group("cms_vs_cs_roundtrip");
    group.throughput(Throughput::Elements(N_KEYS));
    group.bench_function("cs_add_estimate", |b| {
        let mut cs = CountSketch::<i32>::new(3, 1 << 14, 4);
        b.iter(|| {
            let mut acc = 0i64;
            for k in 0..N_KEYS {
                cs.add(black_box(&k), 1);
                acc = acc.wrapping_add(cs.estimate(&k));
            }
            black_box(acc)
        });
    });
    group.bench_function("cms_add_estimate", |b| {
        let mut cms = CountMinSketch::<i32>::new(3, 1 << 14, 4);
        b.iter(|| {
            let mut acc = 0i64;
            for k in 0..N_KEYS {
                cms.add(black_box(&k), 1);
                acc = acc.wrapping_add(cms.estimate(&k));
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn bench_stochastic_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("stochastic_rounding");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("fractional", |b| {
        let mut r = StochasticRounder::new(5);
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..100_000 {
                acc += r.round(black_box(5.6667));
            }
            black_box(acc)
        });
    });
    group.bench_function("integral_fast_path", |b| {
        let mut r = StochasticRounder::new(5);
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..100_000 {
                acc += r.round(black_box(19.0));
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_count_sketch_add,
    bench_count_sketch_estimate,
    bench_counter_widths,
    bench_cms_vs_cs,
    bench_stochastic_rounding
);
criterion_main!(benches);
