//! Sensor analytics — the §II-A worked example, live.
//!
//! ```text
//! cargo run --example sensor_noise
//! ```
//!
//! City noise sensors report decibel readings every 5 minutes; we flag a
//! neighborhood when 80% of its recent readings exceed 70 dB (δ = 0.8,
//! ε = 1 to ignore one-off spikes). The stream replays the paper's three
//! neighborhoods, then scales up to a whole city with per-key criteria:
//! hospital zones get a stricter threshold (§III-C per-key criteria).

use qf_repro::quantile_filter::{Criteria, QuantileFilterBuilder};
use rand::prelude::*;

fn main() {
    // === Part 1: the paper's example, verbatim ===
    let criteria = Criteria::new(1.0, 0.8, 70.0).expect("valid criteria");
    let mut filter = QuantileFilterBuilder::new(criteria)
        .memory_budget_bytes(16 * 1024)
        .seed(1)
        .build();

    let neighborhoods: [(&str, [f64; 8]); 3] = [
        ("A", [65.0, 67.0, 72.0, 69.0, 74.0, 66.0, 68.0, 75.0]),
        ("B", [60.0, 62.0, 64.0, 61.0, 63.0, 75.0, 80.0, 62.0]),
        ("C", [55.0, 57.0, 59.0, 58.0, 76.0, 57.0, 56.0, 55.0]),
    ];
    println!("paper example (delta=0.8, eps=1, T=70dB):");
    for (name, readings) in &neighborhoods {
        let mut reported = false;
        for &db in readings {
            reported |= filter.insert(name, db).is_some();
        }
        println!(
            "  neighborhood {name}: {}",
            if reported { "REPORTED" } else { "quiet" }
        );
        assert_eq!(reported, *name == "A", "must match the paper's analysis");
    }

    // === Part 2: a whole city with per-key criteria ===
    // Hospital zones use T = 60 dB; everyone else T = 70 dB.
    let default_c = Criteria::new(1.0, 0.8, 70.0).unwrap();
    let hospital_c = Criteria::new(1.0, 0.8, 60.0).unwrap();
    let mut city = QuantileFilterBuilder::new(default_c)
        .memory_budget_bytes(64 * 1024)
        .seed(2)
        .build();

    let mut rng = StdRng::seed_from_u64(3);
    let mut flagged = std::collections::BTreeSet::new();
    for _ in 0..200_000 {
        let zone: u64 = rng.gen_range(0..500);
        let hospital = zone.is_multiple_of(50); // every 50th zone is a hospital
                                                // Zone 120 is near a construction site (loud); zone 0 is a
                                                // hospital beside a busy road (61–68 dB — fine for normal zones,
                                                // over the hospital limit of 60 dB). Other zones stay below 61 dB
                                                // so they clear both thresholds with margin.
        let db = match zone {
            120 => rng.gen_range(68.0..85.0),
            0 => rng.gen_range(61.0..68.0),
            _ => rng.gen_range(40.0..61.0),
        };
        let c = if hospital { &hospital_c } else { &default_c };
        if city.insert_with_criteria(&zone, db, c).is_some() {
            flagged.insert(zone);
        }
    }
    println!("\ncity run: flagged zones {flagged:?}");
    assert!(flagged.contains(&120), "construction zone must be flagged");
    assert!(
        flagged.contains(&0),
        "hospital zone must be flagged under its stricter threshold"
    );
    assert!(
        flagged.len() <= 4,
        "quiet zones must stay quiet: {flagged:?}"
    );
    println!("per-key criteria behave as specified");
}
