//! Multi-criteria monitoring (§III-C): watch the p99 *and* the p50 of the
//! same keys simultaneously, and modify criteria at runtime.
//!
//! ```text
//! cargo run --example multi_criteria
//! ```

use qf_repro::quantile_filter::{Criteria, MultiCriteriaFilter, QuantileFilterBuilder};
use rand::prelude::*;

fn main() {
    // Two simultaneous criteria per key:
    //   0: p99 > 500 (tail blowups; ε = 3)
    //   1: p50 > 150 (sustained degradation; ε = 5)
    let c_tail = Criteria::new(3.0, 0.99, 500.0).unwrap();
    let c_median = Criteria::new(5.0, 0.5, 150.0).unwrap();
    let filter = QuantileFilterBuilder::new(c_tail)
        .memory_budget_bytes(128 * 1024)
        .seed(9)
        .build();
    let mut multi = MultiCriteriaFilter::new(filter, vec![c_tail, c_median]);
    println!(
        "monitoring {} criteria per key ({} bytes total)",
        multi.criteria_count(),
        multi.memory_bytes()
    );

    let mut rng = StdRng::seed_from_u64(10);
    let mut fired: std::collections::BTreeMap<(u64, usize), u32> = Default::default();
    for _ in 0..300_000 {
        let key: u64 = rng.gen_range(0..100);
        let value = match key {
            // Key 7: good median, horrible 2% tail — only the p99
            // criterion should fire.
            7 => {
                if rng.gen_bool(0.02) {
                    rng.gen_range(600.0..2000.0)
                } else {
                    rng.gen_range(20.0..100.0)
                }
            }
            // Key 42: everything mediocre-slow — only the p50 criterion
            // should fire (tail stays under 500).
            42 => rng.gen_range(160.0..400.0),
            _ => rng.gen_range(10.0..120.0),
        };
        for (criterion, _report) in multi.insert(&key, value) {
            *fired.entry((key, criterion)).or_default() += 1;
        }
    }

    println!("reports (key, criterion) -> count:");
    for ((key, criterion), count) in &fired {
        let label = if *criterion == 0 {
            "p99>500"
        } else {
            "p50>150"
        };
        println!("  key {key:>3} under {label}: {count} reports");
    }
    assert!(fired.contains_key(&(7, 0)), "key 7 must trip the p99 rule");
    assert!(
        !fired.contains_key(&(7, 1)),
        "key 7 must not trip the p50 rule"
    );
    assert!(
        fired.contains_key(&(42, 1)),
        "key 42 must trip the p50 rule"
    );
    assert!(
        !fired.contains_key(&(42, 0)),
        "key 42 must not trip the p99 rule"
    );
    assert!(fired.len() == 2, "no other key/criterion pair: {fired:?}");
    println!("both criteria fire independently: ok");
}
