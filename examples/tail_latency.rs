//! Network tail-latency monitoring — the paper's lead application.
//!
//! ```text
//! cargo run --release --example tail_latency
//! ```
//!
//! Streams an internet-like trace (five-tuple flows, heavy-tailed
//! latencies) through QuantileFilter configured per the SLA of §I:
//! "identify the user whose 95% latency exceeds 200ms". Compares the
//! real-time reports with exact ground truth and prints
//! precision/recall/F1 and throughput, at two memory budgets.

use qf_repro::qf_baselines::QfDetector;
use qf_repro::qf_datasets::{internet_like, key_to_five_tuple, InternetConfig};
use qf_repro::qf_eval::{ground_truth, run_detector, Accuracy};
use qf_repro::quantile_filter::Criteria;

fn main() {
    let cfg = InternetConfig {
        items: 500_000,
        keys: 20_000,
        threshold: 200.0,
        ..InternetConfig::default()
    };
    println!("generating internet-like trace ({} items)...", cfg.items);
    let dataset = internet_like(&cfg);
    println!(
        "  {} distinct flows, {:.2}% of packets above T={}ms",
        dataset.key_count,
        dataset.abnormal_fraction * 100.0,
        dataset.threshold
    );

    // SLA criterion: p95 latency > 200 ms, with ε = 30 rank slack so only
    // flows with sustained evidence are flagged.
    let criteria = Criteria::new(30.0, 0.95, 200.0).expect("valid criteria");
    let truth = ground_truth(&dataset.items, &criteria);
    println!("  ground truth: {} outstanding flows\n", truth.len());

    for memory in [32 * 1024, 512 * 1024] {
        let mut det = QfDetector::paper_default(criteria, memory, 1);
        let result = run_detector(&mut det, &dataset.items);
        let acc = Accuracy::of(&result.reported, &truth);
        println!(
            "memory {:>7} B: {}  throughput {:.1} Mops",
            memory,
            acc,
            result.mops()
        );
        // Show a couple of flagged flows in five-tuple form.
        for key in result.reported.iter().take(3) {
            let ft = key_to_five_tuple(*key);
            println!(
                "    flagged flow {:>8}: {}.{}.{}.{}:{} -> ...:{} proto {}",
                key,
                ft.src_ip >> 24,
                (ft.src_ip >> 16) & 255,
                (ft.src_ip >> 8) & 255,
                ft.src_ip & 255,
                ft.src_port,
                ft.dst_port,
                ft.protocol
            );
        }
    }
}
