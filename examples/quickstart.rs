//! Quickstart: detect quantile-outstanding keys in a synthetic stream.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds a QuantileFilter with the paper's default parameters, streams a
//! small workload with two planted outstanding keys, and prints every
//! real-time report plus a final comparison with the exact ground truth.

use qf_repro::qf_baselines::{ExactDetector, OutstandingDetector};
use qf_repro::quantile_filter::{Criteria, QuantileFilterBuilder};
use rand::prelude::*;

fn main() {
    // Report any key whose 95th-percentile value exceeds 200, with rank
    // slack ε = 10 (so a key needs real evidence before a report).
    let criteria = Criteria::new(10.0, 0.95, 200.0).expect("valid criteria");
    println!(
        "criteria: eps={} delta={} T={}  (item weight +{:.0}/-1, report at Qweight >= {:.0})",
        criteria.epsilon(),
        criteria.delta(),
        criteria.threshold(),
        criteria.weight_above(),
        criteria.report_threshold()
    );

    let mut filter = QuantileFilterBuilder::new(criteria)
        .memory_budget_bytes(64 * 1024) // 64 KiB total
        .seed(42)
        .build();
    let mut exact = ExactDetector::new(criteria);

    // Synthetic stream: 200 keys with ~50ms values; keys 13 and 77 are
    // slow (most of their values above T).
    let mut rng = StdRng::seed_from_u64(7);
    let mut first_report: Option<(u64, usize)> = None;
    let mut reported = std::collections::HashSet::new();
    for i in 0..200_000usize {
        let key = rng.gen_range(0..200u64);
        let value = if key == 13 || key == 77 {
            rng.gen_range(220.0..800.0)
        } else {
            rng.gen_range(1.0..120.0)
        };
        if let Some(report) = filter.insert(&key, value) {
            if reported.insert(key) {
                println!(
                    "item {i:>7}: key {key} reported ({:?} part, Qweight {})",
                    report.source, report.estimated_qweight
                );
            }
            first_report.get_or_insert((key, i));
        }
        exact.insert(key, value);
    }

    println!("\nfilter memory: {} bytes", filter.memory_bytes());
    println!(
        "candidate hit rate: {:.1}%",
        filter.stats().candidate_hit_rate() * 100.0
    );
    println!("reported keys: {reported:?}");
    assert!(
        reported.contains(&13) && reported.contains(&77),
        "the two slow keys must be caught"
    );
    assert_eq!(reported.len(), 2, "no false positives expected here");
    println!("matches exact ground truth: ok");
}
