//! Crash-safe checkpointing: snapshot a live filter, "crash", restore,
//! and resume with a byte-identical report stream.
//!
//! ```text
//! cargo run --example checkpoint_restore
//! ```
//!
//! Also demonstrates the typed-error surface: corrupted checkpoint files,
//! version skew and non-finite (poisoned) values are all reported as
//! `QfError` values — never a panic.

use qf_repro::quantile_filter::{Criteria, QfError, QuantileFilter, QuantileFilterBuilder};
use rand::prelude::*;

fn workload(rng: &mut StdRng) -> (u64, f64) {
    let key = rng.gen_range(0..200u64);
    let value = if key == 13 || key == 77 {
        rng.gen_range(220.0..800.0)
    } else {
        rng.gen_range(1.0..120.0)
    };
    (key, value)
}

fn try_restore(bytes: &[u8]) -> Result<QuantileFilter, QfError> {
    QuantileFilter::restore(bytes)
}

fn main() {
    let criteria = Criteria::new(10.0, 0.95, 200.0).expect("valid criteria");
    let build = || {
        QuantileFilterBuilder::new(criteria)
            .memory_budget_bytes(64 * 1024)
            .seed(42)
            .build()
    };

    // ---- Phase 1: a long-running monitor checkpoints mid-stream. --------
    let mut live: QuantileFilter = build();
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..100_000usize {
        let (key, value) = workload(&mut rng);
        live.insert(&key, value);
    }
    let checkpoint = live.snapshot();
    let path = std::path::Path::new("target").join("checkpoint.qfsn");
    std::fs::write(&path, &checkpoint).expect("write checkpoint");
    println!(
        "checkpointed after 100k items: {} bytes -> {}",
        checkpoint.len(),
        path.display()
    );

    // ---- Phase 2: crash & restore; both twins replay the same suffix. ---
    // `live` plays the monitor that never went down; `recovered` is
    // restarted from nothing but the checkpoint file.
    let bytes = std::fs::read(&path).expect("read checkpoint");
    let mut recovered = try_restore(&bytes).expect("valid checkpoint");

    let suffix: Vec<(u64, f64)> = (0..100_000).map(|_| workload(&mut rng)).collect();
    let mut divergences = 0usize;
    let mut reports = 0usize;
    for &(key, value) in &suffix {
        let a = live.insert(&key, value);
        let b = recovered.insert(&key, value);
        if a != b {
            divergences += 1;
        }
        reports += usize::from(a.is_some());
    }
    println!(
        "replayed 100k post-crash items: {reports} reports, {divergences} divergences, \
         end snapshots identical: {}",
        live.snapshot() == recovered.snapshot()
    );
    assert_eq!(divergences, 0, "restored filter must resume identically");

    // ---- Phase 3: damage is detected, typed, and panic-free. ------------
    let mut flipped = bytes.clone();
    flipped[bytes.len() / 2] ^= 0x10;
    match try_restore(&flipped) {
        Err(QfError::CorruptSnapshot { reason }) => {
            println!("bit-flipped checkpoint rejected: {reason}");
        }
        other => panic!("corruption not detected: {other:?}"),
    }

    match try_restore(&bytes[..bytes.len() - 9]) {
        Err(QfError::CorruptSnapshot { reason }) => {
            println!("truncated checkpoint rejected:   {reason}");
        }
        other => panic!("truncation not detected: {other:?}"),
    }

    let mut skewed = bytes.clone();
    skewed[4..8].copy_from_slice(&99u32.to_le_bytes());
    match try_restore(&skewed) {
        Err(QfError::VersionMismatch { found, supported }) => {
            println!("version-skewed checkpoint rejected: found v{found}, supported v{supported}");
        }
        other => panic!("version skew not detected: {other:?}"),
    }

    // ---- Phase 4: poisoned values are typed errors, not corruption. -----
    match recovered.try_insert(&13u64, f64::NAN) {
        Err(QfError::NonFiniteValue { value }) => {
            println!("poisoned value rejected: NonFiniteValue {{ value: {value} }}");
        }
        other => panic!("poison not detected: {other:?}"),
    }
    // The infallible API drops poison silently and stays usable.
    assert!(recovered.insert(&13u64, f64::INFINITY).is_none());
    recovered.insert(&13u64, 500.0);
    println!(
        "filter still live after poison: key 13 Qweight = {}",
        recovered.query(&13u64)
    );
}
