//! Trace round-trip: generate a workload, persist it to the binary trace
//! format, reload it, and replay it through the streaming iterator API.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```
//!
//! This is the offline-replay workflow: capture once with `gen_trace`,
//! re-run detection under different criteria without regenerating.

use qf_repro::qf_datasets::{internet_like, trace, InternetConfig};
use qf_repro::quantile_filter::stream::DetectExt;
use qf_repro::quantile_filter::{Criteria, QuantileFilterBuilder};

fn main() {
    let cfg = InternetConfig {
        items: 200_000,
        keys: 10_000,
        ..InternetConfig::default()
    };
    let dataset = internet_like(&cfg);
    let path = std::env::temp_dir().join("qf_replay_demo.qftr");
    trace::write_file(&path, &dataset.items, dataset.threshold).expect("write trace");
    println!(
        "wrote {} ({} items, {} keys, T={})",
        path.display(),
        dataset.items.len(),
        dataset.key_count,
        dataset.threshold
    );

    let (items, threshold) = trace::read_file(&path).expect("read trace");
    assert_eq!(items.len(), dataset.items.len());

    // Replay the same trace under two different SLAs.
    for (label, eps, delta) in [("strict p99", 10.0, 0.99), ("lenient p90", 30.0, 0.90)] {
        let criteria = Criteria::new(eps, delta, threshold).expect("valid");
        let mut qf = QuantileFilterBuilder::new(criteria)
            .memory_budget_bytes(128 * 1024)
            .seed(5)
            .build();
        let reported: std::collections::HashSet<u64> = items
            .iter()
            .map(|it| (it.key, it.value))
            .detect(&mut qf)
            .map(|(key, _)| key)
            .collect();
        println!(
            "{label:>12} (eps={eps}, delta={delta}): {} outstanding keys, \
             candidate hit rate {:.1}%",
            reported.len(),
            qf.stats().candidate_hit_rate() * 100.0
        );
    }
    std::fs::remove_file(&path).ok();
    println!("replay complete");
}
