//! Offline stand-in for the `crossbeam` crate.
//!
//! Only scoped threads are provided, implemented directly on
//! `std::thread::scope` (stable since 1.63). The API mirrors the
//! `crossbeam::scope` shape this workspace uses: the closure passed to
//! [`Scope::spawn`] receives a placeholder argument (call sites write
//! `|_|`), handles expose `join() -> std::thread::Result<T>`, and
//! [`scope`] returns a `Result` like the real crate (always `Ok` here —
//! std's scope propagates panics instead of collecting them).

/// Scoped-thread handle namespace, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope in which threads borrowing local state may be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure's argument is a
        /// placeholder for crossbeam's nested-scope handle (unused by
        /// every call site in this workspace, which write `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a [`Scope`]; all spawned threads are joined before
    /// this returns. Always `Ok`: a panicking child that was not joined
    /// propagates the panic (std semantics) rather than surfacing as
    /// `Err`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
