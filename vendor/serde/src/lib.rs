//! Offline stand-in for `serde`.
//!
//! Provides marker `Serialize`/`Deserialize` traits and (behind the
//! `derive` feature) re-exports the no-op derives from the vendored
//! `serde_derive`. Enough for `#[derive(Serialize, Deserialize)]` +
//! `#[serde(...)]` attributes to compile; no actual data format support.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
