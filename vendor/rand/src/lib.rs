//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this vendored crate
//! reimplements the narrow `rand` 0.8 API surface the workspace actually
//! uses — seedable RNGs (`SmallRng`, `StdRng`), `Rng::{gen, gen_range,
//! gen_bool}`, and `SliceRandom::shuffle` — on top of a SplitMix64 engine.
//! Streams are deterministic per seed, which is all the workload
//! generators and tests require; no claim of statistical parity with the
//! real crate's engines is made.

use core::ops::{Range, RangeInclusive};

#[inline(always)]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with generator output.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds (only the `seed_from_u64` form is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    #[doc(hidden)]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    #[doc(hidden)]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0);
                lo + (u as $t) * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-producible type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// In-place Fisher–Yates shuffle and friends.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffle the slice in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[i])
        }
    }
}

/// The named generator types.
pub mod rngs {
    use super::{mix64, RngCore, SeedableRng};

    macro_rules! splitmix_rng {
        ($(#[$meta:meta])* $name:ident) => {
            $(#[$meta])*
            #[derive(Debug, Clone)]
            pub struct $name {
                state: u64,
            }

            impl RngCore for $name {
                #[inline]
                fn next_u64(&mut self) -> u64 {
                    self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    mix64(self.state)
                }
            }

            impl SeedableRng for $name {
                #[inline]
                fn seed_from_u64(seed: u64) -> Self {
                    Self { state: mix64(seed) }
                }
            }
        };
    }

    splitmix_rng!(
        /// Small fast generator (SplitMix64-backed in this stand-in).
        SmallRng
    );
    splitmix_rng!(
        /// Default generator (SplitMix64-backed in this stand-in; NOT
        /// cryptographically secure, unlike the real `StdRng`).
        StdRng
    );
}

/// The usual glob-import surface.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SampleUniform, SeedableRng, SliceRandom};
}

pub use prelude::*;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: i16 = rng.gen_range(i16::MIN..=i16::MAX);
            let _ = i;
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
