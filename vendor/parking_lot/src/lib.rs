//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free locking API:
//! `lock()` returns the guard directly (ignoring poison — the data is
//! still returned after a panicking holder, matching parking_lot's
//! no-poisoning semantics), and `into_inner()`/`get_mut()` are
//! infallible.

use std::sync::MutexGuard;

/// Mutual exclusion primitive with parking_lot's non-`Result` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on
    /// poison; a previous holder's panic does not invalidate the data.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0u32);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner mutex");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
