//! Offline stand-in for `serde_derive`.
//!
//! The derives expand to nothing: they exist so `#[derive(Serialize,
//! Deserialize)]` and `#[serde(...)]` field attributes compile without the
//! real crate. Nothing in this workspace actually serializes through serde
//! (configs are plain-old-data and round-trip via their own codecs), so
//! marker-level support is sufficient.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; swallows `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; swallows `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
