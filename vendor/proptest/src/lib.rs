//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this vendored crate
//! provides the subset of proptest this workspace uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]` header), range and tuple
//! strategies, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is deterministic (seeded from the test name so failures
//! reproduce exactly), and there is no shrinking — a failing case panics
//! with the ordinary assert message instead.

use core::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 case generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; tests derive the seed from their own name.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }
}

/// Hash a test-function name into a reproducible seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A value generator. Strategies are sampled fresh for every test case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// `Just`-style constant strategy.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+ $(,)?)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generate vectors of `element` draws with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    trait SampleLen {
        fn sample_len(self, rng: &mut TestRng) -> usize;
    }

    impl SampleLen for Range<usize> {
        fn sample_len(self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            let span = (self.end - self.start) as u64;
            self.start + (rng.next_u64() % span) as usize
        }
    }
}

/// Configuration and common re-exports.
pub mod prelude {
    pub use super::collection;
    pub use super::{Just, Strategy};

    /// Per-test run configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Boolean property assertion (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The test-defining macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    // NOTE: internal @-rules must precede the catch-all arm — macro arms
    // are tried in order, and a trailing `$($rest:tt)*` would otherwise
    // swallow `@funcs ...` recursions and loop forever.
    (@funcs ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_seed($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    $crate::proptest!(@bind rng $($args)*);
                    $body
                }
            }
        )*
    };

    (@bind $rng:ident) => {};
    (@bind $rng:ident $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
    };
    (@bind $rng:ident $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::sample(&$strat, &mut $rng);
        $crate::proptest!(@bind $rng $($rest)*);
    };

    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::prelude::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (-1.0f64..1.0).sample(&mut rng);
            assert!((-1.0..1.0).contains(&f));
            let i = (i16::MIN..=i16::MAX).sample(&mut rng);
            let _ = i;
        }
    }

    #[test]
    fn vec_strategy_obeys_len() {
        let mut rng = TestRng::from_seed(2);
        let s = collection::vec(0i64..5, 3..7);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }

    crate::proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_multiple_args(
            xs in collection::vec(0u64..100, 1..10),
            q in 0.0f64..1.0,
        ) {
            crate::prop_assert!(!xs.is_empty());
            crate::prop_assert!((0.0..1.0).contains(&q));
        }

        #[test]
        fn macro_supports_tuples_and_mut(mut pairs in collection::vec((0u64..50, -20i64..20), 1..6)) {
            pairs.push((0, 0));
            crate::prop_assert!(pairs.len() >= 2);
        }
    }
}
