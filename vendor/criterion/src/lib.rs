//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace benches
//! use — `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::{iter, iter_batched}`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros — as a simple wall-clock
//! runner. No statistics, outlier rejection, or HTML reports: each bench
//! is timed over a bounded number of iterations and a single mean line is
//! printed. Good enough for smoke-running benches offline and for keeping
//! bench targets compiling; numbers are indicative only.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units-processed-per-iteration declaration for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored by this
/// runner; every iteration gets a fresh setup value).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier for a bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` compound id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Per-bench measurement driver handed to the bench closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

/// Iteration budget per bench: stop after this many iterations or after
/// [`TIME_CAP`] of measured work, whichever comes first.
const MAX_ITERS: u64 = 30;
const TIME_CAP: Duration = Duration::from_millis(250);

impl Bencher {
    fn new() -> Self {
        Self {
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Time repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        while self.iters < MAX_ITERS && self.elapsed < TIME_CAP {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        while self.iters < MAX_ITERS && self.elapsed < TIME_CAP {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    if bencher.iters == 0 {
        println!("{label:<48} (no iterations)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
    let mut line = format!("{label:<48} {:>12.3} us/iter", per_iter * 1e6);
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            line.push_str(&format!("  {:>10.2} Melem/s", n as f64 / per_iter / 1e6));
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            line.push_str(&format!(
                "  {:>10.2} MiB/s",
                n as f64 / per_iter / (1 << 20) as f64
            ));
        }
        _ => {}
    }
    println!("{line}");
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run a standalone bench.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&id.id, &b, None);
    }
}

/// A named collection of benches sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint (accepted, ignored by this runner).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint (accepted, ignored by this runner).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a bench in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Run a bench parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Collect bench functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_and_bounds() {
        let mut b = Bencher::new();
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert!(b.iters > 0 && b.iters <= MAX_ITERS);
        assert_eq!(count, b.iters);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .throughput(Throughput::Elements(4))
            .bench_function("sum", |b| {
                b.iter(|| (0u64..4).sum::<u64>());
            })
            .bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &k| {
                b.iter_batched(|| k, |k| k * 2, BatchSize::LargeInput);
            })
            .finish();
    }
}
