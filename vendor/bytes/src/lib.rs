//! Offline stand-in for the `bytes` crate.
//!
//! Implements the small `Bytes`/`BytesMut`/`Buf`/`BufMut` surface the
//! trace codec uses, backed by a plain `Vec<u8>` plus a read cursor. No
//! reference-counted zero-copy sharing — `clone` copies — which is
//! irrelevant for the test- and tool-sized traces in this repo.

use core::ops::Deref;

/// An immutable byte buffer with a consuming read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unconsumed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    /// A new `Bytes` over a sub-range of the unconsumed bytes.
    pub fn slice(&self, range: core::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.data[self.pos..][range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consume `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR!");
        w.put_u32_le(7);
        w.put_u64_le(u64::MAX - 3);
        w.put_f64_le(-2.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 4 + 4 + 8 + 8);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HDR!");
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f64_le(), -2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_deref() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(&*b, &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        let mut dst = [0u8; 4];
        b.copy_to_slice(&mut dst);
    }
}
